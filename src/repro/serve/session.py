"""Stateful link sessions: geometry + assignment + codec chain + accounts.

A :class:`LinkSession` is the server-side identity of one coded TSV link.
It binds

* a :class:`~repro.tsv.geometry.TSVArrayGeometry` (the physical array the
  coded words drive),
* a :class:`~repro.serve.codecs.CodecChain` built from JSON-able codec
  specs (each codec carries its own per-link history),
* a bit-to-TSV :class:`~repro.core.assignment.SignedPermutation`
  (typically the Eq. 10 optimum found offline and shipped in the link
  config),
* two :class:`~repro.serve.metrics.EnergyAccount` instances pricing the
  *coded* physical stream and the *uncoded* reference stream with the
  same fitted capacitance model, so the session can report live
  coded-vs-uncoded power savings that match the offline model bit for
  bit.

``decode(encode(x)) == x`` holds for every chain and arbitrary request
chunking (see :mod:`repro.serve.codecs`). Sessions are thread-safe but
serialized: the engine runs all batches of one link on a single worker so
codec history stays a totally ordered stream.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.assignment import SignedPermutation
from repro.datagen.util import words_to_bits
from repro.serve.codecs import (
    MAX_WORD_WIDTH,
    CodecChain,
    build_chain,
    parse_codec_spec,
)
from repro.serve.metrics import EnergyAccount
from repro.tsv.geometry import TSVArrayGeometry


class LinkConfigError(ValueError):
    """A link configuration that cannot be realized."""


#: Geometry fields accepted in a link config (SI units, metres).
_GEOMETRY_FIELDS = ("rows", "cols", "pitch", "radius", "length")


@dataclass
class LinkConfig:
    """JSON-able description of one coded link.

    Parameters
    ----------
    width:
        Payload word width in bits (1..``MAX_WORD_WIDTH``).
    geometry:
        The TSV array carrying the link.
    codecs:
        Codec spec dicts applied payload -> line side (see
        :func:`repro.serve.codecs.build_codec`). May be empty: a raw link
        still gets routing and energy accounting.
    assignment:
        Optional bit-to-TSV signed permutation over all ``n_tsvs`` lines
        (identity when omitted). Found offline, shipped with the config.
    cap_method:
        Capacitance extraction method for the energy accounts (see
        :func:`repro.experiments.common.cap_model_for`).
    """

    width: int
    geometry: TSVArrayGeometry
    codecs: List[Dict[str, object]] = field(default_factory=list)
    assignment: Optional[SignedPermutation] = None
    cap_method: str = "compact3d"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkConfig":
        """Parse and validate a config received over the control channel."""
        if not isinstance(data, Mapping):
            raise LinkConfigError(
                f"link config must be a mapping, got {type(data).__name__}"
            )
        fields = dict(data)
        try:
            width = int(fields.pop("width"))
        except KeyError:
            raise LinkConfigError(
                "link config needs a payload 'width'"
            ) from None
        except (TypeError, ValueError):
            raise LinkConfigError(
                "payload 'width' must be an integer"
            ) from None
        if not 1 <= width <= MAX_WORD_WIDTH:
            raise LinkConfigError(
                f"width must be in 1..{MAX_WORD_WIDTH}, got {width}"
            )

        geometry_spec = fields.pop("geometry", None)
        if not isinstance(geometry_spec, Mapping):
            raise LinkConfigError("link config needs a 'geometry' mapping")
        unknown = set(geometry_spec) - set(_GEOMETRY_FIELDS)
        if unknown:
            raise LinkConfigError(
                f"unknown geometry fields: {sorted(unknown)}"
            )
        try:
            kwargs: Dict[str, Any] = {
                "rows": int(geometry_spec["rows"]),
                "cols": int(geometry_spec["cols"]),
                "pitch": float(geometry_spec["pitch"]),
                "radius": float(geometry_spec["radius"]),
            }
            if "length" in geometry_spec:
                kwargs["length"] = float(geometry_spec["length"])
            geometry = TSVArrayGeometry(**kwargs)
        except LinkConfigError:
            raise
        except KeyError as exc:
            raise LinkConfigError(
                f"geometry needs field {exc.args[0]!r}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise LinkConfigError(f"bad geometry: {exc}") from exc

        codecs_spec = fields.pop("codecs", [])
        if isinstance(codecs_spec, str):
            codecs_spec = [codecs_spec]
        if not isinstance(codecs_spec, Sequence):
            raise LinkConfigError("'codecs' must be a list of codec specs")
        codecs: List[Dict[str, object]] = []
        for spec in codecs_spec:
            if isinstance(spec, str):
                codecs.append(parse_codec_spec(spec))
            elif isinstance(spec, Mapping):
                codecs.append(dict(spec))
            else:
                raise LinkConfigError(
                    f"codec spec must be a mapping or string, got {spec!r}"
                )

        assignment_spec = fields.pop("assignment", None)
        assignment: Optional[SignedPermutation] = None
        if assignment_spec is not None:
            if not isinstance(assignment_spec, Mapping):
                raise LinkConfigError(
                    "'assignment' must be a mapping with 'line_of_bit'"
                )
            try:
                assignment = SignedPermutation.from_sequence(
                    assignment_spec["line_of_bit"],
                    assignment_spec.get("inverted"),
                )
            except KeyError:
                raise LinkConfigError(
                    "assignment needs 'line_of_bit'"
                ) from None
            except (TypeError, ValueError) as exc:
                raise LinkConfigError(f"bad assignment: {exc}") from exc

        cap_method = str(fields.pop("cap_method", "compact3d"))
        if fields:
            raise LinkConfigError(
                f"unknown link config fields: {sorted(fields)}"
            )
        return cls(
            width=width,
            geometry=geometry,
            codecs=codecs,
            assignment=assignment,
            cap_method=cap_method,
        )

    def to_dict(self) -> Dict[str, Any]:
        geometry = {
            "rows": self.geometry.rows,
            "cols": self.geometry.cols,
            "pitch": self.geometry.pitch,
            "radius": self.geometry.radius,
            "length": self.geometry.length,
        }
        assignment = None
        if self.assignment is not None:
            assignment = {
                "line_of_bit": list(self.assignment.line_of_bit),
                "inverted": [bool(x) for x in self.assignment.inverted],
            }
        return {
            "width": self.width,
            "geometry": geometry,
            "codecs": [dict(spec) for spec in self.codecs],
            "assignment": assignment,
            "cap_method": self.cap_method,
        }


class LinkSession:
    """One live coded link: codec state, routing, and energy accounts.

    ``encode`` maps payload words to coded transport words, routes the
    coded bits onto the TSV lines through the configured assignment and
    books them (plus the uncoded reference bits) into the energy
    accounts; ``decode`` is the exact inverse of ``encode`` on the word
    level and books nothing (the receive side of a link does not drive
    the bus).
    """

    def __init__(self, config: LinkConfig) -> None:
        from repro.experiments.common import cap_model_for

        self.config = config
        geometry = config.geometry
        self.n_lines = geometry.n_tsvs
        try:
            self.chain: CodecChain = build_chain(
                config.codecs, config.width, geometry=geometry
            )
        except ValueError as exc:
            raise LinkConfigError(str(exc)) from exc
        if self.chain.width_out > self.n_lines:
            raise LinkConfigError(
                f"chain produces {self.chain.width_out}-bit words but the "
                f"{geometry.rows}x{geometry.cols} array has only "
                f"{self.n_lines} TSVs"
            )
        if config.width > self.n_lines:
            raise LinkConfigError(
                f"{config.width}-bit payload does not fit the "
                f"{self.n_lines}-TSV array"
            )
        if config.assignment is None:
            self.assignment = SignedPermutation.identity(self.n_lines)
        elif len(config.assignment.line_of_bit) != self.n_lines:
            raise LinkConfigError(
                f"assignment covers {len(config.assignment.line_of_bit)} "
                f"lines, array has {self.n_lines}"
            )
        else:
            self.assignment = config.assignment
        # Prime the chain once at link creation: the first encode pays
        # one-time kernel warm-up (ufunc dispatch caches, lazy buffers)
        # that would otherwise land inside the first served request's
        # latency. reset() restores pristine codec histories, so served
        # streams are unaffected.
        self.chain.encode(np.zeros(1, dtype=np.int64))
        self.chain.decode(np.zeros(1, dtype=np.int64))
        self.chain.reset()
        capacitance = cap_model_for(geometry, config.cap_method)
        self.coded_energy = EnergyAccount(self.n_lines, capacitance)
        self.uncoded_energy = EnergyAccount(self.n_lines, capacitance)
        #: Highest fleet sequence number whose effect is reflected in the
        #: codec histories and energy accounts. 0 = nothing applied. The
        #: fleet front uses this cut to trim its replay journal: a
        #: snapshot taken under the lock is consistent with exactly the
        #: requests numbered <= applied_seq.
        self.applied_seq = 0
        self._lock = threading.Lock()

    # -- data path ----------------------------------------------------------

    def _pad_lines(self, bits: np.ndarray) -> np.ndarray:
        """Zero-pad a bit batch up to the array's full line count."""
        if bits.shape[1] == self.n_lines:
            return bits
        padded = np.zeros((bits.shape[0], self.n_lines), dtype=bits.dtype)
        padded[:, : bits.shape[1]] = bits
        return padded

    def encode(
        self, words: np.ndarray, seq: Optional[int] = None
    ) -> np.ndarray:
        """Payload words -> coded transport words, booking both accounts.

        ``seq`` (when given) is the fleet sequence number of the last
        request in the batch; it is folded into :attr:`applied_seq` under
        the same lock that mutates the codec chain, so snapshots are
        consistent cuts of the request stream.
        """
        with self._lock:
            coded = self.chain.encode(words)
            if len(coded):
                coded_bits = self._pad_lines(
                    words_to_bits(coded, self.chain.width_out)
                )
                self.coded_energy.update(
                    self.assignment.apply_to_bits(coded_bits)
                )
                self.uncoded_energy.update(
                    self._pad_lines(
                        words_to_bits(
                            np.asarray(words, dtype=np.int64),
                            self.config.width,
                        )
                    )
                )
            if seq is not None:
                self.applied_seq = max(self.applied_seq, int(seq))
            return coded

    def decode(
        self, coded: np.ndarray, seq: Optional[int] = None
    ) -> np.ndarray:
        """Coded transport words -> payload words (exact inverse)."""
        with self._lock:
            decoded = self.chain.decode(coded)
            if seq is not None:
                self.applied_seq = max(self.applied_seq, int(seq))
            return decoded

    def reset(self, seq: Optional[int] = None) -> None:
        """Restart the stream: codec histories and energy accounts."""
        from repro.experiments.common import cap_model_for

        with self._lock:
            self.chain.reset()
            capacitance = cap_model_for(
                self.config.geometry, self.config.cap_method
            )
            self.coded_energy = EnergyAccount(self.n_lines, capacitance)
            self.uncoded_energy = EnergyAccount(self.n_lines, capacitance)
            if seq is not None:
                self.applied_seq = max(self.applied_seq, int(seq))

    # -- snapshot / restore --------------------------------------------------

    def _snapshot_locked(self) -> Dict[str, Any]:
        return {
            "applied_seq": int(self.applied_seq),
            "chain": self.chain.state_dict(),
            "coded_energy": self.coded_energy.state_dict(),
            "uncoded_energy": self.uncoded_energy.state_dict(),
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able exact state: codec histories, accounts, sequence cut.

        Every leaf is an int or bool, so the snapshot survives JSON (and
        :class:`~repro.runtime.artifacts.CheckpointStore`) losslessly;
        :meth:`restore` followed by replaying the requests numbered after
        ``applied_seq`` reproduces the uninterrupted stream bit for bit.
        """
        with self._lock:
            return self._snapshot_locked()

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Load a :meth:`snapshot`; atomic — a bad snapshot changes nothing.

        Raises :class:`ValueError` when the snapshot does not match this
        session's configuration (codec kinds, line counts) or fails
        validation; the session keeps its pre-call state in that case.
        """
        if not isinstance(snapshot, Mapping):
            raise ValueError(
                f"snapshot must be a mapping, got {type(snapshot).__name__}"
            )
        expected = {"applied_seq", "chain", "coded_energy", "uncoded_energy"}
        unknown = set(snapshot) - expected
        if unknown:
            raise ValueError(f"unknown snapshot fields: {sorted(unknown)}")
        seq = snapshot.get("applied_seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise ValueError(
                f"snapshot 'applied_seq' must be an int >= 0, got {seq!r}"
            )
        with self._lock:
            previous = self._snapshot_locked()
            try:
                self.chain.load_state_dict(snapshot.get("chain"))
                self.coded_energy.load_state_dict(
                    snapshot.get("coded_energy")
                )
                self.uncoded_energy.load_state_dict(
                    snapshot.get("uncoded_energy")
                )
            except (ValueError, TypeError):
                # TypeError is belt-and-braces: the state_dict loaders
                # validate to ValueError, but a malformed leaf slipping
                # through as TypeError must also leave the session on
                # its pre-call state, not half-restored.
                self.chain.load_state_dict(previous["chain"])
                self.coded_energy.load_state_dict(previous["coded_energy"])
                self.uncoded_energy.load_state_dict(
                    previous["uncoded_energy"]
                )
                raise
            self.applied_seq = seq

    # -- reporting ----------------------------------------------------------

    def energy_report(self) -> Dict[str, Any]:
        """Live coded-vs-uncoded power comparison of everything encoded."""
        with self._lock:
            # reset() rebinds the accounts; snapshot both references under
            # the lock so the comparison prices one consistent stream.
            coded_account = self.coded_energy
            uncoded_account = self.uncoded_energy
        coded = coded_account.report()
        uncoded = uncoded_account.report()
        savings = None
        coded_power = coded["normalized_power_farad"]
        uncoded_power = uncoded["normalized_power_farad"]
        if coded_power is not None and uncoded_power:
            savings = 1.0 - coded_power / uncoded_power
        return {"coded": coded, "uncoded": uncoded, "savings": savings}

    def info(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "config": self.config.to_dict(),
                "width_in": self.chain.width_in,
                "width_out": self.chain.width_out,
                "n_lines": self.n_lines,
                "codecs": self.chain.specs(),
            }


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``T`` = batch samples.
REPRO_SIGNATURES = {
    "LinkConfig": {
        "width": "scalar dimensionless",
        "geometry": "TSVArrayGeometry",
        "codecs": "any",
        "assignment": "SignedPermutation",
        "cap_method": "any",
    },
    "LinkConfig.from_dict": {"data": "any", "return": "LinkConfig"},
    "LinkSession": {"config": "LinkConfig"},
    "LinkSession.encode": {"words": "(T,) dimensionless",
                           "seq": "scalar dimensionless",
                           "return": "(T,) dimensionless"},
    "LinkSession.decode": {"coded": "(T,) dimensionless",
                           "seq": "scalar dimensionless",
                           "return": "(T,) dimensionless"},
    "LinkSession.applied_seq": "scalar dimensionless",
    "LinkSession.n_lines": "scalar dimensionless",
    "LinkSession.coded_energy": "EnergyAccount",
    "LinkSession.uncoded_energy": "EnergyAccount",
    # Concurrency discipline: sessions are constructed on executor threads
    # (the server's run_in_executor) and batched on engine workers, so
    # everything reset() rebinds is guarded by the session lock.
    "@threads": ["LinkSession"],
    "@guards": [
        "LinkSession.chain guarded_by _lock",
        "LinkSession.coded_energy guarded_by _lock",
        "LinkSession.uncoded_energy guarded_by _lock",
        "LinkSession.applied_seq guarded_by _lock",
    ],
    # Exactness discipline (REP3xx): the energy report feeds client
    # responses and the bench_serve online-vs-offline gate — it must be
    # identical for identical word streams — and the snapshot is the
    # fleet failover contract: identical state must serialize to
    # identical bits.
    "@deterministic": [
        "LinkSession.energy_report",
        "LinkSession.snapshot",
    ],
}
