"""Framed wire protocol of the link server (version 1).

Every message — request or response — is one *frame*:

.. code-block:: text

    0      2    3    4        8           12
    +------+----+----+--------+-----------+----------~~~+---------~~~+
    | "RS" | v1 | 00 | hdr_len| payload_len| JSON header | payload    |
    +------+----+----+--------+-----------+----------~~~+---------~~~+
       2B    1B   1B   u32 BE     u32 BE     hdr_len B    payload_len B

i.e. a fixed 12-byte prefix (``struct`` format ``!2sBxII``: magic
``b"RS"``, protocol version, one pad byte, JSON header length, binary
payload length, both big-endian u32), then the UTF-8 JSON **control
header** and the raw binary **payload**. The payload, when present, is a
flat array of little-endian signed 64-bit words — the transport format of
every word stream.

Requests carry ``op`` (``create_link``, ``encode``, ``decode``,
``stats``, ``reset``, ``drop_link``, ``ping``) and a client-chosen
integer ``id``; responses echo the ``id`` with ``ok: true`` plus
op-specific fields, or ``ok: false`` with ``error`` (the exception class
name) and ``message``. Responses are matched by ``id``, **not** by
order: a pipelining client may have many requests in flight and the
server may answer them as their batches complete.

Version 1 additionally defines three *optional* header fields used by
the fleet (:mod:`repro.serve.fleet`) and the retrying client — absent
fields keep the exact pre-fleet semantics, so every peer stays
compatible:

``seq`` (request, int >= 1)
    Fleet sequence number of a data-plane request. The worker folds it
    into ``LinkSession.applied_seq`` when the request mutates codec
    state, which is how snapshots name their cut of the front's replay
    journal.
``replay`` (request, bool)
    The frame re-issues a journaled request after a worker restart.
    Deadlines are ignored during replay — a request that was applied
    before the crash *must* be re-applied, or the restored stream
    diverges from the original.
``retriable`` (response, bool)
    NACK refinement on ``ok: false`` errors: the request was **not**
    applied to codec state and may be safely re-issued (e.g. the fleet
    front shedding while a worker restarts). Errors without the flag
    must not be blindly retried — the stream is broken, not congested.

A client that sends a ``hello`` op with a ``session`` token opts into
server-side response caching: the server remembers recent responses per
session so a reconnecting client can re-issue requests the old
connection never answered and receive the *original* results instead of
re-executing them (exactly-once semantics for the retry path).

Both asyncio-stream and blocking-file helpers live here so the asyncio
server and the synchronous client share one framing implementation.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, BinaryIO, Dict, Tuple

import numpy as np

#: First bytes of every frame.
MAGIC = b"RS"
#: Protocol version spoken by this module.
VERSION = 1
#: Fixed frame prefix: magic, version, pad, header length, payload length.
HEADER = struct.Struct("!2sBxII")

#: Sanity bounds: a control header or data payload beyond these is a
#: corrupt or hostile frame, not a big request.
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 28

#: Bytes per transported word (little-endian int64).
WORD_BYTES = 8


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid protocol frame."""


def error_header(
    request_id: Any, exc: BaseException, retriable: bool = False
) -> Dict[str, Any]:
    """The ``ok: false`` response header for a failed request.

    ``retriable=True`` marks a NACK: the request did not touch codec
    state and the client may re-issue it verbatim. The flag carries an
    ordering promise for pipelined streams — a server that sheds one
    request of a link retriably must keep shedding every later data
    request of that link on the same session connection until the shed
    requests are re-issued in id order (the *order fence*, implemented
    in :mod:`repro.serve.server`); otherwise a re-issued chunk could be
    applied behind later chunks and fork a stateful codec's history.
    """
    header: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if retriable:
        header["retriable"] = True
    return header


def pack_frame(header: Dict[str, Any], payload: bytes = b"") -> bytes:
    """Serialize one frame (prefix + JSON header + payload)."""
    body = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_HEADER_BYTES:
        raise ProtocolError(f"control header too large: {len(body)} bytes")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large: {len(payload)} bytes")
    return HEADER.pack(MAGIC, VERSION, len(body), len(payload)) + body + payload


def _parse_prefix(prefix: bytes) -> Tuple[int, int]:
    magic, version, header_len, payload_len = HEADER.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(
            f"protocol version {version} not supported (speaking {VERSION})"
        )
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"control header too large: {header_len} bytes")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large: {payload_len} bytes")
    return header_len, payload_len


def _parse_header(body: bytes) -> Dict[str, Any]:
    try:
        header = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            f"control header is not valid JSON: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise ProtocolError("control header must be a JSON object")
    return header


async def read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[Dict[str, Any], bytes]:
    """Read one frame from an asyncio stream; ``EOFError`` at clean EOF."""
    try:
        prefix = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from None
        raise ProtocolError("connection closed mid-frame") from exc
    header_len, payload_len = _parse_prefix(prefix)
    try:
        body = await reader.readexactly(header_len)
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _parse_header(body), payload


async def write_frame(
    writer: asyncio.StreamWriter,
    header: Dict[str, Any],
    payload: bytes = b"",
) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(pack_frame(header, payload))
    await writer.drain()


def _read_exactly(stream: BinaryIO, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == n and not chunks:
                raise EOFError("connection closed")
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_blocking(stream: BinaryIO) -> Tuple[Dict[str, Any], bytes]:
    """Blocking-file twin of :func:`read_frame` (for the sync client)."""
    prefix = _read_exactly(stream, HEADER.size)
    header_len, payload_len = _parse_prefix(prefix)
    body = _read_exactly(stream, header_len)
    payload = _read_exactly(stream, payload_len)
    return _parse_header(body), payload


def write_frame_blocking(
    stream: BinaryIO, header: Dict[str, Any], payload: bytes = b""
) -> None:
    """Blocking-file twin of :func:`write_frame`."""
    stream.write(pack_frame(header, payload))
    stream.flush()


def words_to_payload(words: np.ndarray) -> bytes:
    """Flatten a word stream into the wire payload (little-endian int64)."""
    words = np.asarray(words)
    if words.ndim != 1:
        raise ProtocolError(f"word stream must be 1-D, got {words.ndim}-D")
    if not np.issubdtype(words.dtype, np.integer):
        raise ProtocolError(f"word stream must be integer, got {words.dtype}")
    return words.astype("<i8").tobytes()


def payload_to_words(payload: bytes) -> np.ndarray:
    """Parse a wire payload back into a native int64 word stream."""
    if len(payload) % WORD_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes is not a whole number of "
            f"{WORD_BYTES}-byte words"
        )
    return np.frombuffer(payload, dtype="<i8").astype(np.int64)


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``T`` = words per frame.
REPRO_SIGNATURES = {
    "words_to_payload": {"words": "(T,) dimensionless"},
    "payload_to_words": {"payload": "any",
                         "return": "(T,) dimensionless"},
}
