"""Fleet worker: one :class:`ServeEngine` process behind a unix socket.

A worker is a :class:`~repro.serve.server.LinkServer` subclass spawned by
the fleet front (:mod:`repro.serve.fleet`) — ``python -m
repro.serve.worker --path <sock> --index <i> --generation <g>`` — and
extended with the two control ops failover needs:

``snapshot``
    Return :meth:`LinkSession.snapshot` of one link. The snapshot is
    taken under the session lock, so it lands *between* batches and its
    ``applied_seq`` names a consistent cut of the front's journal: every
    request numbered at or below it is inside the snapshot, every one
    above it is not.
``restore_link``
    Build a fresh :class:`LinkSession` from a shipped config, load a
    snapshot into it (when given) and adopt it into the engine — the
    first step of the front's restore-then-replay protocol.

The worker also hosts the process-level chaos points of the fleet:
``worker_crash`` converts an injected fault into a hard ``os._exit``
(exit code :data:`WORKER_CRASH_EXIT`) on the data plane — a real crash,
not an exception the front could catch in-band — and ``worker_hang``
stalls the event loop so heartbeats go unanswered and the front's
crash detection has something to detect. Both receive the worker index
and *generation* (incarnation counter, passed down by the front at
spawn) as context, which is how ``worker_crash(i,once)`` stays confined
to the first incarnation across process restarts.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
from typing import Any, Dict, Optional

from repro.runtime.faults import InjectedFault, fault_point
from repro.serve.engine import BatchPolicy
from repro.serve.server import LinkServer, _Connection
from repro.serve.session import LinkConfig, LinkSession

logger = logging.getLogger("repro.serve")

#: Exit code of a worker killed by an injected ``worker_crash`` — distinct
#: from real signal deaths so tests can assert the right process died for
#: the right reason.
WORKER_CRASH_EXIT = 17

#: Extra ``op`` values a worker answers on top of the LinkServer set.
WORKER_OPS = ("snapshot", "restore_link")

#: How often a worker checks that the fleet front still exists
#: (overridable via ``REPRO_WORKER_ORPHAN_POLL_S``, mainly for tests).
ORPHAN_POLL_S = 2.0


class WorkerServer(LinkServer):
    """A :class:`LinkServer` that knows it is one worker of a fleet."""

    def __init__(
        self,
        index: int,
        generation: int = 0,
        policy: Optional[BatchPolicy] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(policy=policy, max_workers=max_workers)
        self.index = int(index)
        self.generation = int(generation)

    def _dispatch(
        self,
        header: Dict[str, Any],
        payload: bytes,
        reply: Any,
        conn: Optional[_Connection] = None,
    ) -> Optional["asyncio.Task[None]"]:
        if header.get("op") in ("encode", "decode"):
            fault_point(
                "worker_hang",
                worker=self.index, generation=self.generation,
            )
            try:
                fault_point(
                    "worker_crash",
                    worker=self.index, generation=self.generation,
                )
            except InjectedFault:
                # Die the way a crashed process dies: no unwinding, no
                # farewell frame — the front must detect the loss itself.
                logger.warning(
                    "worker %d (generation %d) exiting on injected crash",
                    self.index, self.generation,
                )
                os._exit(WORKER_CRASH_EXIT)
        return super()._dispatch(header, payload, reply, conn)

    async def _run_control(
        self, op: Optional[str], header: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "snapshot":
            link = str(header.get("link"))
            session = self.engine.session(link)
            # The snapshot copies the integer Gram matrices; keep that
            # off the event loop like every other session-lock hold.
            snapshot = await asyncio.get_running_loop().run_in_executor(
                None, session.snapshot
            )
            return {"link": link, "snapshot": snapshot}
        if op == "restore_link":
            link = str(header.get("link"))
            config = LinkConfig.from_dict(header.get("config"))
            loop = asyncio.get_running_loop()
            session = await loop.run_in_executor(None, LinkSession, config)
            snapshot = header.get("snapshot")
            if snapshot is not None:
                await loop.run_in_executor(None, session.restore, snapshot)
            self.engine.add_link(link, session)
            return {
                "link": link,
                "applied_seq": session.applied_seq,
                "info": session.info(),
            }
        return await super()._run_control(op, header)


def worker_main(
    path: str,
    index: int,
    generation: int = 0,
    policy: Optional[BatchPolicy] = None,
    max_workers: Optional[int] = None,
) -> None:
    """Serve one fleet worker on unix socket ``path`` until killed."""

    parent = os.getppid()
    poll_s = float(os.environ.get("REPRO_WORKER_ORPHAN_POLL_S",
                                  ORPHAN_POLL_S))

    async def orphan_watch() -> None:
        # The front owns this process and normally kills it on close.
        # If the front dies without unwinding (SIGKILLed test runner,
        # crashed driver) the worker is re-parented and would otherwise
        # idle forever on a stale socket; exit instead of leaking.
        while os.getppid() == parent:
            await asyncio.sleep(poll_s)
        logger.warning(
            "fleet front (pid %d) is gone; worker %d exiting",
            parent, index,
        )
        os._exit(0)

    async def main() -> None:
        server = WorkerServer(
            index=index, generation=generation,
            policy=policy, max_workers=max_workers,
        )
        await server.start(path=path)
        logger.info(
            "fleet worker %d (generation %d) serving on %s",
            index, generation, path,
        )
        asyncio.get_running_loop().create_task(orphan_watch())
        await server.serve_forever()

    try:
        asyncio.run(main())
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.worker",
        description="One fleet worker process (spawned by repro.serve.fleet)",
    )
    parser.add_argument("--path", required=True,
                        help="unix socket to serve on")
    parser.add_argument("--index", type=int, required=True,
                        help="worker slot index in the fleet")
    parser.add_argument("--generation", type=int, default=0,
                        help="incarnation counter (0 = first spawn)")
    parser.add_argument("--policy", default=None,
                        help="BatchPolicy fields as a JSON object")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="batch executor threads")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format=f"[worker {args.index}] %(levelname)s %(message)s",
    )
    policy = None
    if args.policy:
        policy = BatchPolicy(**json.loads(args.policy))
    worker_main(
        args.path, args.index, generation=args.generation,
        policy=policy, max_workers=args.max_workers,
    )


if __name__ == "__main__":
    main()


#: Signatures for the lint passes: the worker adds no shape/unit surface
#: (payloads are typed at the session boundary); declare its threading
#: structure for the concurrency pass.
REPRO_SIGNATURES = {
    "WorkerServer": {
        "index": "scalar dimensionless",
        "generation": "scalar dimensionless",
    },
}
