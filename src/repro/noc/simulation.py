"""Link-trace simulation: what word sequence does each link carry?

The power of a link depends only on the *sequence of words* it transmits —
not on queueing micro-timing — so the simulator routes every packet and
appends its flits to the trace of each traversed link, in packet order.
Between packets a link either holds its last word (``idle="hold"``, links
with latches) or returns to zero (``idle="zero"``, links that are actively
driven low); one idle cycle is inserted so that inter-packet transitions
are modelled rather than ignored.

This deliberately abstracts contention: interleaving packets differently
reshuffles *which* words abut, which second-order effect is far smaller
than the pattern statistics themselves. The trade is an orders-of-magnitude
faster simulation that still produces exact per-link bit streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datagen.util import words_to_bits
from repro.noc.routing import path_links, xyz_route
from repro.noc.topology import Coordinate, Link, MeshTopology
from repro.noc.traffic import PacketTrace

IDLE_MODES = ("hold", "zero")


@dataclass
class LinkTraces:
    """Per-link word traces of one simulated workload."""

    topology: MeshTopology
    flit_width: int
    words: Dict[Tuple[Coordinate, Coordinate], np.ndarray]

    def trace(self, source: Coordinate, destination: Coordinate) -> np.ndarray:
        key = (source, destination)
        if key not in self.words:
            raise KeyError(f"no traffic recorded on link {key}")
        return self.words[key]

    def bits(self, source: Coordinate, destination: Coordinate) -> np.ndarray:
        """The physical bit stream of a link (LSB first)."""
        return words_to_bits(self.trace(source, destination), self.flit_width)

    def vertical_traces(self) -> Dict[Tuple[Coordinate, Coordinate], np.ndarray]:
        """Traces of the TSV (die-crossing) links only."""
        return {
            key: trace
            for key, trace in self.words.items()
            if key[0][2] != key[1][2]
        }

    def utilization(self) -> Dict[Tuple[Coordinate, Coordinate], int]:
        """Number of flits carried per link."""
        return {key: len(trace) for key, trace in self.words.items()}


def simulate_link_traces(
    topology: MeshTopology,
    trace: PacketTrace,
    order: str = "xyz",
    idle: str = "hold",
) -> LinkTraces:
    """Route every packet and materialize each link's word sequence."""
    if idle not in IDLE_MODES:
        raise ValueError(f"unknown idle mode {idle!r}; choose {IDLE_MODES}")
    collected: Dict[Tuple[Coordinate, Coordinate], List[np.ndarray]] = {}
    for packet in trace.packets:
        path = xyz_route(topology, packet.source, packet.destination, order)
        for hop in path_links(path):
            chunks = collected.setdefault(hop, [])
            if chunks and idle == "zero":
                chunks.append(np.zeros(1, dtype=np.int64))
            elif chunks and idle == "hold":
                chunks.append(chunks[-1][-1:])
            chunks.append(packet.flits.astype(np.int64))
    words = {
        hop: np.concatenate(chunks)
        for hop, chunks in collected.items()
        if sum(len(c) for c in chunks) >= 2
    }
    return LinkTraces(
        topology=topology, flit_width=trace.flit_width, words=words
    )
