"""A small 3-D mesh network-on-chip substrate.

The paper's final experiment assumes "a 3D network on chip, where the data
is mainly transmitted over 2D links and a dedicated encoding for each 3D
link is too cost intensive". This package builds that system so the claim
can be evaluated at network level rather than on a single link:

``topology``
    3-D mesh of routers; horizontal (planar metal) and vertical (TSV
    array) links.
``routing``
    Deterministic dimension-ordered XYZ routing.
``traffic``
    Packet generators (uniform, hotspot, transpose) with configurable flit
    payloads.
``simulation``
    Link-trace simulation: routes every packet and materializes the flit
    stream each link actually carries — the input the power models need.
``power``
    Per-vertical-link assignment optimization and the network-level power
    report (plain vs invert-coded vs assignment vs both).
"""

from repro.noc.topology import Link, MeshTopology
from repro.noc.routing import xyz_route
from repro.noc.traffic import PacketTrace, hotspot_traffic, transpose_traffic, uniform_traffic
from repro.noc.simulation import LinkTraces, simulate_link_traces
from repro.noc.power import VerticalLinkReport, optimize_vertical_links

__all__ = [
    "Link",
    "MeshTopology",
    "xyz_route",
    "PacketTrace",
    "uniform_traffic",
    "hotspot_traffic",
    "transpose_traffic",
    "LinkTraces",
    "simulate_link_traces",
    "VerticalLinkReport",
    "optimize_vertical_links",
]
