"""3-D mesh topology: routers and links.

Routers sit on an ``nx x ny x nz`` grid; each router connects to its six
neighbours (fewer at the mesh faces). Horizontal links are planar metal
buses; vertical links cross a die boundary through a TSV array — the links
this library exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

Coordinate = Tuple[int, int, int]


@dataclass(frozen=True)
class Link:
    """A directed link between adjacent routers.

    ``vertical`` is True when the link crosses dies (z changes) — i.e. it
    is a TSV array rather than planar metal.
    """

    source: Coordinate
    destination: Coordinate

    def __post_init__(self) -> None:
        deltas = [abs(a - b) for a, b in zip(self.source, self.destination)]
        if sorted(deltas) != [0, 0, 1]:
            raise ValueError(
                f"link {self.source} -> {self.destination} is not between "
                "adjacent routers"
            )

    @property
    def vertical(self) -> bool:
        return self.source[2] != self.destination[2]


@dataclass(frozen=True)
class MeshTopology:
    """An ``nx x ny x nz`` 3-D mesh.

    ``nz`` is the number of stacked dies; ``nz >= 2`` means vertical (TSV)
    links exist.
    """

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("all mesh dimensions must be >= 1")

    @property
    def n_routers(self) -> int:
        return self.nx * self.ny * self.nz

    def contains(self, node: Coordinate) -> bool:
        x, y, z = node
        return 0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz

    def nodes(self) -> Iterator[Coordinate]:
        for z in range(self.nz):
            for y in range(self.ny):
                for x in range(self.nx):
                    yield (x, y, z)

    def node_index(self, node: Coordinate) -> int:
        """Flat index of a router (x fastest)."""
        if not self.contains(node):
            raise ValueError(f"{node} outside the {self.nx}x{self.ny}x{self.nz} mesh")
        x, y, z = node
        return (z * self.ny + y) * self.nx + x

    def neighbors(self, node: Coordinate) -> List[Coordinate]:
        if not self.contains(node):
            raise ValueError(f"{node} outside the mesh")
        x, y, z = node
        candidates = [
            (x - 1, y, z), (x + 1, y, z),
            (x, y - 1, z), (x, y + 1, z),
            (x, y, z - 1), (x, y, z + 1),
        ]
        return [c for c in candidates if self.contains(c)]

    def links(self) -> List[Link]:
        """All directed links of the mesh."""
        result = []
        for node in self.nodes():
            for neighbor in self.neighbors(node):
                result.append(Link(node, neighbor))
        return result

    def vertical_links(self) -> List[Link]:
        """The TSV-array links (directed)."""
        return [link for link in self.links() if link.vertical]

    def link_map(self) -> Dict[Tuple[Coordinate, Coordinate], Link]:
        return {(l.source, l.destination): l for l in self.links()}
