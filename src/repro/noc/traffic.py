"""Traffic generation for the 3-D mesh.

A :class:`PacketTrace` is a list of packets; each packet has a source, a
destination and a payload of flits (integer words of the link width). The
spatial patterns are the classic NoC benchmarks:

* ``uniform`` — destination uniform over all other routers;
* ``hotspot`` — a fraction of the traffic converges on one router (e.g. a
  memory controller on the bottom die — this is what loads the TSVs);
* ``transpose`` — (x, y, z) -> (y, x, nz-1-z), a permutation pattern with
  guaranteed vertical crossings.

Flit payloads come from the library's data generators: ``payload="random"``
for uncoded random words, ``payload="gaussian"`` for DSP-like correlated
words *within* each packet.

All generators accept ``rng`` as a :class:`numpy.random.Generator`, an
integer seed, or ``None`` (the library default seed) — see
:func:`repro.rng.ensure_rng` — so traces are reproducible by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datagen.gaussian import ar1_gaussian_words
from repro.noc.topology import Coordinate, MeshTopology
from repro.rng import RngLike, ensure_rng

PAYLOADS = ("random", "gaussian")


@dataclass(frozen=True)
class Packet:
    source: Coordinate
    destination: Coordinate
    flits: np.ndarray  # 1-D integer words

    def __post_init__(self) -> None:
        if self.flits.ndim != 1 or len(self.flits) == 0:
            raise ValueError("a packet needs a 1-D, non-empty flit payload")


@dataclass(frozen=True)
class PacketTrace:
    """A workload: packets plus the link word width they assume."""

    packets: Tuple[Packet, ...]
    flit_width: int

    @property
    def n_flits(self) -> int:
        return sum(len(p.flits) for p in self.packets)


def _payload(
    kind: str, n_flits: int, width: int, rng: np.random.Generator
) -> np.ndarray:
    if kind == "random":
        return rng.integers(0, 1 << width, n_flits, dtype=np.int64)
    if kind == "gaussian":
        words = ar1_gaussian_words(
            n_flits, width, sigma=2.0 ** (width - 3), rho=0.8, rng=rng
        )
        return np.where(words < 0, words + (1 << width), words)
    raise ValueError(f"unknown payload kind {kind!r}; choose {PAYLOADS}")


def _make_trace(
    pairs: List[Tuple[Coordinate, Coordinate]],
    flit_width: int,
    flits_per_packet: int,
    payload: str,
    rng: np.random.Generator,
) -> PacketTrace:
    packets = [
        Packet(src, dst, _payload(payload, flits_per_packet, flit_width, rng))
        for src, dst in pairs
    ]
    return PacketTrace(packets=tuple(packets), flit_width=flit_width)


def uniform_traffic(
    topology: MeshTopology,
    n_packets: int,
    flit_width: int = 16,
    flits_per_packet: int = 8,
    payload: str = "gaussian",
    rng: RngLike = None,
) -> PacketTrace:
    """Uniform random source/destination pairs (source != destination)."""
    rng = ensure_rng(rng)
    nodes = list(topology.nodes())
    if len(nodes) < 2:
        raise ValueError("uniform traffic needs at least two routers")
    pairs = []
    for _ in range(n_packets):
        src = nodes[rng.integers(len(nodes))]
        dst = nodes[rng.integers(len(nodes))]
        while dst == src:
            dst = nodes[rng.integers(len(nodes))]
        pairs.append((src, dst))
    return _make_trace(pairs, flit_width, flits_per_packet, payload, rng)


def hotspot_traffic(
    topology: MeshTopology,
    n_packets: int,
    hotspot: Coordinate,
    hotspot_fraction: float = 0.5,
    flit_width: int = 16,
    flits_per_packet: int = 8,
    payload: str = "gaussian",
    rng: RngLike = None,
) -> PacketTrace:
    """Uniform traffic with a fraction redirected to one hot router."""
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    if not topology.contains(hotspot):
        raise ValueError("hotspot outside the mesh")
    rng = ensure_rng(rng)
    nodes = list(topology.nodes())
    pairs = []
    for _ in range(n_packets):
        src = nodes[rng.integers(len(nodes))]
        if rng.random() < hotspot_fraction and src != hotspot:
            dst = hotspot
        else:
            dst = nodes[rng.integers(len(nodes))]
            while dst == src:
                dst = nodes[rng.integers(len(nodes))]
        pairs.append((src, dst))
    return _make_trace(pairs, flit_width, flits_per_packet, payload, rng)


def transpose_traffic(
    topology: MeshTopology,
    packets_per_node: int = 1,
    flit_width: int = 16,
    flits_per_packet: int = 8,
    payload: str = "gaussian",
    rng: RngLike = None,
) -> PacketTrace:
    """(x, y, z) -> (y, x, nz-1-z): every packet crosses the stack."""
    if topology.nx != topology.ny:
        raise ValueError("transpose traffic needs a square x/y footprint")
    rng = ensure_rng(rng)
    pairs = []
    for _ in range(packets_per_node):
        for node in topology.nodes():
            x, y, z = node
            dst = (y, x, topology.nz - 1 - z)
            if dst != node:
                pairs.append((node, dst))
    return _make_trace(pairs, flit_width, flits_per_packet, payload, rng)
