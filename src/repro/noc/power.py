"""Network-level power analysis of the vertical (TSV) links.

Ties the NoC substrate to the assignment technique: every vertical link of
the mesh gets its own TSV array, the simulated link trace provides its bit
statistics, and the Eq. 10 search picks one assignment per link (the
per-bundle independence the paper notes makes the cost negligible).

Variants evaluated per link:

* ``plain``    — arbitrary (random-mean) wiring of the unmodified trace;
* ``assigned`` — the optimal bit-to-TSV assignment;
* ``coded``    — the coupling-invert NoC code (paper ref [24]) on the same
  trace, arbitrary wiring — the "encode every 3-D link" alternative the
  paper calls too cost intensive (it also adds one TSV per link);
* ``coded+assigned`` — both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.coding.businvert import coded_bit_stream, coupling_invert_encode
from repro.core.assignment import SignedPermutation
from repro.core.optimize import simulated_annealing
from repro.core.power import PowerModel
from repro.noc.simulation import LinkTraces
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


@dataclass(frozen=True)
class VerticalLinkReport:
    """Aggregate power [F, normalized P_n] of all vertical links."""

    plain: float
    assigned: float
    coded: float
    coded_assigned: float
    n_links: int
    n_flits: int

    def reduction(self, variant: str) -> float:
        """Reduction of a variant against the plain transmission."""
        value = getattr(self, variant)
        return 1.0 - value / self.plain


def _array_for_width(width: int, pitch: float, radius: float) -> TSVArrayGeometry:
    """Smallest near-square array with at least ``width`` TSVs."""
    rows = int(np.floor(np.sqrt(width)))
    while rows >= 1:
        if width % rows == 0:
            return TSVArrayGeometry(rows=rows, cols=width // rows,
                                    pitch=pitch, radius=radius)
        rows -= 1
    raise AssertionError("unreachable: rows=1 always divides")


def _random_mean(model: PowerModel, rng: np.random.Generator,
                 n_samples: int) -> float:
    powers = [
        model.power(SignedPermutation.random(model.n_lines, rng))
        for _ in range(n_samples)
    ]
    return float(np.mean(powers))


def optimize_vertical_links(
    traces: LinkTraces,
    pitch: float = 4e-6,
    radius: float = 1e-6,
    cap_method: str = "compact3d",
    baseline_samples: int = 30,
    sa_steps: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    min_flits: int = 16,
) -> VerticalLinkReport:
    """Optimize every vertical link and report network totals.

    Links carrying fewer than ``min_flits`` flits are skipped (their
    statistics are meaningless and their power negligible).
    """
    if rng is None:
        rng = np.random.default_rng(2018)
    width = traces.flit_width

    data_array = _array_for_width(width, pitch, radius)
    coded_array = _array_for_width(width + 1, pitch, radius)
    data_model = LinearCapacitanceModel.fit(
        CapacitanceExtractor(data_array, method=cap_method)
    )
    coded_model = LinearCapacitanceModel.fit(
        CapacitanceExtractor(coded_array, method=cap_method)
    )

    totals = {"plain": 0.0, "assigned": 0.0, "coded": 0.0,
              "coded_assigned": 0.0}
    n_links = 0
    n_flits = 0
    for (src, dst), words in sorted(traces.vertical_traces().items()):
        if len(words) < min_flits:
            continue
        n_links += 1
        n_flits += len(words)

        bits = traces.bits(src, dst)
        stats = BitStatistics.from_stream(bits)
        model = PowerModel(stats, data_model)
        totals["plain"] += _random_mean(model, rng, baseline_samples)
        best = simulated_annealing(
            model.power, width, rng=rng, steps_per_temperature=sa_steps
        )
        if not best.completed:
            # An interrupted link search would bias the network totals;
            # bubble up so checkpointed sweeps drop the half-done point.
            raise KeyboardInterrupt("link assignment search interrupted")
        totals["assigned"] += best.power

        coded_words, flags = coupling_invert_encode(words, width)
        coded_bits = coded_bit_stream(coded_words, flags, width)
        coded_stats = BitStatistics.from_stream(coded_bits)
        coded_power = PowerModel(coded_stats, coded_model)
        totals["coded"] += _random_mean(coded_power, rng, baseline_samples)
        coded_best = simulated_annealing(
            coded_power.power, width + 1, rng=rng,
            steps_per_temperature=sa_steps,
        )
        if not coded_best.completed:
            raise KeyboardInterrupt("link assignment search interrupted")
        totals["coded_assigned"] += coded_best.power

    if n_links == 0:
        raise ValueError("no vertical link carried enough traffic")
    return VerticalLinkReport(
        plain=totals["plain"],
        assigned=totals["assigned"],
        coded=totals["coded"],
        coded_assigned=totals["coded_assigned"],
        n_links=n_links,
        n_flits=n_flits,
    )
