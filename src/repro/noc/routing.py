"""Deterministic dimension-ordered routing for the 3-D mesh.

XYZ routing: correct the X coordinate first, then Y, then Z. Deadlock-free
on meshes (a strict dimension order admits no cyclic channel dependency)
and the standard baseline for 3-D NoC studies. Routing order is a
parameter — ``"zxy"`` descends/ascends through the stack first, which
loads the vertical links with *unmodified* source traffic, while ``"xyz"``
hands them traffic that several planar hops have already serialized.
"""

from __future__ import annotations

from typing import List

from repro.noc.topology import Coordinate, MeshTopology

ORDERS = ("xyz", "zxy")


def xyz_route(
    topology: MeshTopology,
    source: Coordinate,
    destination: Coordinate,
    order: str = "xyz",
) -> List[Coordinate]:
    """Router sequence from ``source`` to ``destination`` (inclusive)."""
    if order not in ORDERS:
        raise ValueError(f"unknown routing order {order!r}; choose {ORDERS}")
    if not topology.contains(source) or not topology.contains(destination):
        raise ValueError("source or destination outside the mesh")

    dimension_of = {"x": 0, "y": 1, "z": 2}
    path = [source]
    current = list(source)
    for letter in order:
        axis = dimension_of[letter]
        target = destination[axis]
        step = 1 if target > current[axis] else -1
        while current[axis] != target:
            current[axis] += step
            path.append(tuple(current))
    return path


def path_links(path: List[Coordinate]) -> List[tuple]:
    """The (source, destination) link hops of a router path."""
    return list(zip(path[:-1], path[1:]))
