"""Search for the power-optimal assignment ``A_pi`` (paper Eq. 10).

The search space is the signed symmetric group: all ``n!`` bit orderings
combined with all ``2^n`` inversion patterns, restricted by
:class:`~repro.core.assignment.AssignmentConstraints`. The paper uses
simulated annealing and notes the cost is negligible because each TSV
bundle is small; we provide:

* :func:`simulated_annealing` — the production search (swap and inversion
  moves, geometric cooling, restart support);
* :func:`greedy_descent` — cheap deterministic polish: best-improvement
  hill climbing over all pair swaps and inversion toggles;
* :func:`exhaustive_search` — exact oracle for small ``n`` (tests, and the
  3x3 arrays of the paper's Sec. 7 are within reach without inversions).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.power import PowerModel
from repro.rng import ensure_rng

CostFunction = Callable[[SignedPermutation], float]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an assignment search."""

    assignment: SignedPermutation
    power: float
    evaluations: int


def _constrained_identity(
    n: int, constraints: AssignmentConstraints
) -> SignedPermutation:
    """A valid starting assignment honouring pinned lines."""
    constraints.validate_for(n)
    line_of_bit = [-1] * n
    used = set()
    for bit, line in constraints.pinned.items():
        line_of_bit[bit] = line
        used.add(line)
    free_lines = iter(line for line in range(n) if line not in used)
    for bit in range(n):
        if line_of_bit[bit] < 0:
            line_of_bit[bit] = next(free_lines)
    return SignedPermutation.from_sequence(line_of_bit)


def exhaustive_search(
    cost: CostFunction,
    n_bits: int,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
) -> SearchResult:
    """Exact minimum by enumeration — exponential, for small ``n`` only.

    Raises when the space exceeds ~2 million assignments; use simulated
    annealing beyond that.
    """
    constraints.validate_for(n_bits)
    free = constraints.free_bits(n_bits)
    invertible = constraints.invertible_bits(n_bits) if with_inversions else ()
    space = math.factorial(len(free)) * (2 ** len(invertible))
    if space > 2_000_000:
        raise ValueError(
            f"exhaustive search space too large ({space} assignments)"
        )

    pinned_lines = set(constraints.pinned.values())
    free_lines = [line for line in range(n_bits) if line not in pinned_lines]

    best_assignment: Optional[SignedPermutation] = None
    best_power = math.inf
    evaluations = 0
    for perm in itertools.permutations(free_lines):
        line_of_bit = [0] * n_bits
        for bit, line in constraints.pinned.items():
            line_of_bit[bit] = line
        for bit, line in zip(free, perm):
            line_of_bit[bit] = line
        for pattern in itertools.product((False, True), repeat=len(invertible)):
            inverted = [False] * n_bits
            for bit, flag in zip(invertible, pattern):
                inverted[bit] = flag
            candidate = SignedPermutation.from_sequence(line_of_bit, inverted)
            value = cost(candidate)
            evaluations += 1
            if value < best_power:
                best_power = value
                best_assignment = candidate
    assert best_assignment is not None
    return SearchResult(best_assignment, best_power, evaluations)


def greedy_descent(
    cost: CostFunction,
    start: SignedPermutation,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    max_rounds: int = 1000,
) -> SearchResult:
    """Best-improvement hill climbing over swaps and inversion toggles."""
    n = start.n_bits
    constraints.validate_for(n)
    if not constraints.allows(start):
        raise ValueError("start assignment violates the constraints")
    free = constraints.free_bits(n)
    invertible = constraints.invertible_bits(n) if with_inversions else ()

    current = start
    current_power = cost(current)
    evaluations = 1
    for _ in range(max_rounds):
        best_move: Optional[SignedPermutation] = None
        best_power = current_power
        for a_idx in range(len(free)):
            for b_idx in range(a_idx + 1, len(free)):
                candidate = current.with_swapped_bits(free[a_idx], free[b_idx])
                value = cost(candidate)
                evaluations += 1
                if value < best_power - 1e-30:
                    best_power = value
                    best_move = candidate
        for bit in invertible:
            candidate = current.with_toggled_inversion(bit)
            value = cost(candidate)
            evaluations += 1
            if value < best_power - 1e-30:
                best_power = value
                best_move = candidate
        if best_move is None:
            break
        current, current_power = best_move, best_power
    return SearchResult(current, current_power, evaluations)


def simulated_annealing(
    cost: CostFunction,
    n_bits: int,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    start: Optional[SignedPermutation] = None,
    rng: Optional[np.random.Generator] = None,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.93,
    steps_per_temperature: Optional[int] = None,
    min_temperature_ratio: float = 1e-4,
    polish: bool = True,
) -> SearchResult:
    """Simulated annealing over signed permutations (the paper's choice).

    Moves are uniform random bit-pair swaps and (when allowed) inversion
    toggles. The initial temperature defaults to the standard deviation of
    the cost over a random-walk warm-up, the schedule is geometric, and the
    best-seen assignment is optionally polished with :func:`greedy_descent`.
    """
    constraints.validate_for(n_bits)
    rng = ensure_rng(rng)
    if start is None:
        start = _constrained_identity(n_bits, constraints)
    elif not constraints.allows(start):
        raise ValueError("start assignment violates the constraints")
    free = constraints.free_bits(n_bits)
    invertible = constraints.invertible_bits(n_bits) if with_inversions else ()
    if len(free) < 2 and not invertible:
        return SearchResult(start, cost(start), 1)
    if steps_per_temperature is None:
        steps_per_temperature = 25 * n_bits

    def random_neighbor(assignment: SignedPermutation) -> SignedPermutation:
        use_inversion = (
            len(invertible) > 0
            and (len(free) < 2 or rng.random() < 0.3)
        )
        if use_inversion:
            bit = invertible[rng.integers(len(invertible))]
            return assignment.with_toggled_inversion(bit)
        a, b = rng.choice(len(free), size=2, replace=False)
        return assignment.with_swapped_bits(free[a], free[b])

    current = start
    current_power = cost(current)
    evaluations = 1
    best = current
    best_power = current_power

    if initial_temperature is None:
        # Warm-up random walk to scale the temperature to the cost surface.
        samples = []
        probe = current
        for _ in range(max(20, 2 * n_bits)):
            probe = random_neighbor(probe)
            value = cost(probe)
            evaluations += 1
            samples.append(value)
            if value < best_power:
                best, best_power = probe, value
        spread = float(np.std(samples))
        initial_temperature = spread if spread > 0.0 else abs(best_power) * 0.01
        current, current_power = best, best_power

    temperature = initial_temperature
    floor = initial_temperature * min_temperature_ratio
    while temperature > floor and temperature > 0.0:
        accepted = 0
        for _ in range(steps_per_temperature):
            candidate = random_neighbor(current)
            value = cost(candidate)
            evaluations += 1
            delta = value - current_power
            if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
                current, current_power = candidate, value
                accepted += 1
                if value < best_power:
                    best, best_power = candidate, value
        temperature *= cooling
        if accepted == 0 and temperature < initial_temperature * 1e-2:
            break

    if polish:
        polished = greedy_descent(
            cost,
            best,
            with_inversions=with_inversions,
            constraints=constraints,
        )
        evaluations += polished.evaluations
        if polished.power < best_power:
            best, best_power = polished.assignment, polished.power
    return SearchResult(best, best_power, evaluations)


def optimize_power_model(
    model: PowerModel,
    method: str = "sa",
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    rng: Optional[np.random.Generator] = None,
) -> SearchResult:
    """Convenience wrapper: minimize a :class:`PowerModel` directly."""
    cost = model.power
    if method == "sa":
        return simulated_annealing(
            cost,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
            rng=rng,
        )
    if method == "greedy":
        start = _constrained_identity(model.n_lines, constraints)
        return greedy_descent(
            cost, start, with_inversions=with_inversions, constraints=constraints
        )
    if method == "exhaustive":
        return exhaustive_search(
            cost,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
        )
    raise ValueError(f"unknown optimization method {method!r}")
