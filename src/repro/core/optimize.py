"""Search for the power-optimal assignment ``A_pi`` (paper Eq. 10).

The search space is the signed symmetric group: all ``n!`` bit orderings
combined with all ``2^n`` inversion patterns, restricted by
:class:`~repro.core.assignment.AssignmentConstraints`. The paper uses
simulated annealing and notes the cost is negligible because each TSV
bundle is small; we provide:

* :func:`simulated_annealing` — the production search (swap and inversion
  moves, geometric cooling, optional multi-chain restarts);
* :func:`greedy_descent` — cheap deterministic polish: best-improvement
  hill climbing over all pair swaps and inversion toggles;
* :func:`exhaustive_search` — exact oracle for small ``n`` (tests, and the
  3x3 arrays of the paper's Sec. 7 are within reach without inversions).

Every search accepts its objective in two forms. A plain callable
``SignedPermutation -> float`` is the fully generic path. Passing a
:class:`~repro.core.power.PowerModel` (or a pre-built
:class:`~repro.core.fastpower.CompiledPowerModel`) instead enables the
fast path: ``O(n)`` delta-cost evaluation of the two local move types and
batched enumeration, typically an order of magnitude faster (see
``docs/performance.md`` and ``benchmarks/bench_optimize.py``).

Both annealing paths run *the same* batched-rejection Metropolis chain:
proposals are drawn in windows of ``_PROPOSAL_BATCH``, acceptance is the
threshold test ``delta <= -T log(u)``, moves whose ``|delta|`` is within
``_PLATEAU_REL_TOL`` of floating-point noise are rejected as plateau
shuffles, and the best accepted proposal of each window is committed.
The naive path prices each proposal with a scalar objective call; the
fast path prices whole windows with one vectorized kernel call. Given
the same seed the two paths take identical decisions and return
bit-identical best powers (``SearchResult.evaluations`` counts consumed
proposals and also matches), which is what CI's benchmark smoke gate
asserts.

Multi-restart runs on the fast path add a third, still decision-identical
execution mode: **population annealing**. Instead of one thread per
restart, all chains advance through their temperature levels in lockstep
and every pricing round batches the outstanding proposal windows of
*every* chain into one :class:`~repro.core.fastpower.PopulationState`
kernel call. Each chain still consumes its own spawned generator through
:func:`_draw_proposals` and takes the same accept/commit decisions as a
standalone :func:`_anneal_chain`, so the mode is a pure scheduling
change: best powers, assignments, and evaluation counts are bit-equal
per seed (``bench_optimize.py`` gates on this).
"""

from __future__ import annotations

import itertools
import logging
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.fastpower import (
    CompiledPowerModel,
    PopulationState,
    SearchState,
    as_compiled,
)
from repro.core.power import PowerModel
from repro.rng import ensure_rng
from repro.runtime.artifacts import (
    CheckpointError,
    CheckpointStore,
    encode_rng_state,
    restore_rng_state,
)
from repro.runtime.faults import fault_point
from repro.runtime.supervision import ChainSupervisor, Deadline, RunControl

logger = logging.getLogger("repro.core.optimize")

CostFunction = Callable[[SignedPermutation], float]

#: What the searches accept as an objective: the generic callable, or a
#: power model (compiled on the fly) for the delta-cost fast path.
SearchCost = Union[CostFunction, PowerModel, CompiledPowerModel]

#: Relative improvement below which greedy descent treats a move as noise.
#: Relative (not absolute) so convergence does not depend on the unit
#: scale of the capacitance matrix (farads vs femtofarads).
RELATIVE_IMPROVEMENT_TOL = 1e-12

#: Chunk size for batched exhaustive enumeration on the fast path.
_ENUMERATION_CHUNK = 512

#: Proposals priced per batch in the annealer's inner loop. Rejected
#: proposals cost one vectorized kernel call per batch instead of one per
#: proposal, which is where the fast path's speed-up comes from; at most
#: one move (the best accepted one) is committed per batch, so larger
#: batches are faster but coarser-grained chains.
_PROPOSAL_BATCH = 32

#: Probability that a proposal is an inversion toggle when both move types
#: are available.
_TOGGLE_FRACTION = 0.3

#: Moves whose |delta| is below this (relative to the current power) are
#: treated as plateau moves and never committed: symmetric arrays carry
#: large move-degeneracy, and shuffling between exactly-equivalent states
#: costs apply work without changing the chain's power. Far above the
#: ~1e-16 relative noise of delta evaluation, so the naive and fast paths
#: classify moves identically.
_PLATEAU_REL_TOL = 1e-12


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an assignment search.

    ``completed`` is False when the search returned early with its
    best-so-far (wall-clock deadline expired, or a SIGINT/Ctrl-C was
    converted into a clean return); ``n_failed_chains`` counts annealing
    chains that produced no result even after their bounded retries (the
    run *degraded* to the surviving chains instead of raising).
    """

    assignment: SignedPermutation
    power: float
    evaluations: int
    completed: bool = True
    n_failed_chains: int = 0


def _assignment_payload(assignment: SignedPermutation) -> Dict[str, Any]:
    """Checkpoint-friendly description of an assignment."""
    return {
        "line_of_bit": list(assignment.line_of_bit),
        "inverted": [bool(flag) for flag in assignment.inverted],
    }


def _assignment_from_payload(data: Dict[str, Any]) -> SignedPermutation:
    return SignedPermutation.from_sequence(
        data["line_of_bit"], data["inverted"]
    )


def _cost_callable(cost: SearchCost) -> CostFunction:
    """The scalar objective behind any accepted cost form."""
    if isinstance(cost, (PowerModel, CompiledPowerModel)):
        return cost.power
    return cost


def _constrained_identity(
    n: int, constraints: AssignmentConstraints
) -> SignedPermutation:
    """A valid starting assignment honouring pinned lines."""
    constraints.validate_for(n)
    line_of_bit = [-1] * n
    used = set()
    for bit, line in constraints.pinned.items():
        line_of_bit[bit] = line
        used.add(line)
    free_lines = iter(line for line in range(n) if line not in used)
    for bit in range(n):
        if line_of_bit[bit] < 0:
            line_of_bit[bit] = next(free_lines)
    return SignedPermutation.from_sequence(line_of_bit)


def _enumerate_assignments(
    n_bits: int,
    with_inversions: bool,
    constraints: AssignmentConstraints,
):
    """Yield every assignment of the constrained signed symmetric group."""
    free = constraints.free_bits(n_bits)
    invertible = constraints.invertible_bits(n_bits) if with_inversions else ()
    pinned_lines = set(constraints.pinned.values())
    free_lines = [line for line in range(n_bits) if line not in pinned_lines]
    for perm in itertools.permutations(free_lines):
        line_of_bit = [0] * n_bits
        for bit, line in constraints.pinned.items():
            line_of_bit[bit] = line
        for bit, line in zip(free, perm):
            line_of_bit[bit] = line
        for pattern in itertools.product((False, True), repeat=len(invertible)):
            inverted = [False] * n_bits
            for bit, flag in zip(invertible, pattern):
                inverted[bit] = flag
            yield SignedPermutation.from_sequence(line_of_bit, inverted)


def exhaustive_search(
    cost: SearchCost,
    n_bits: int,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
) -> SearchResult:
    """Exact minimum by enumeration — exponential, for small ``n`` only.

    Raises when the space exceeds ~2 million assignments; use simulated
    annealing beyond that. With a power model the candidates are evaluated
    in vectorized batches instead of one congruence per candidate.
    """
    constraints.validate_for(n_bits)
    free = constraints.free_bits(n_bits)
    invertible = constraints.invertible_bits(n_bits) if with_inversions else ()
    space = math.factorial(len(free)) * (2 ** len(invertible))
    if space > 2_000_000:
        raise ValueError(
            f"exhaustive search space too large ({space} assignments)"
        )

    candidates = _enumerate_assignments(n_bits, with_inversions, constraints)
    compiled = as_compiled(cost)
    best_assignment: Optional[SignedPermutation] = None
    best_power = math.inf
    evaluations = 0
    if compiled is not None:
        while True:
            chunk = list(itertools.islice(candidates, _ENUMERATION_CHUNK))
            if not chunk:
                break
            values = compiled.powers(chunk)
            evaluations += len(chunk)
            # Stable key: argmin keeps the first index among equal
            # powers, and _enumerate_assignments yields candidates in a
            # fixed lexicographic order, so ties always resolve to the
            # lexicographically-smallest assignment.
            at = int(np.argmin(values))  # repro: noqa[REP306]
            if values[at] < best_power:
                best_power = float(values[at])
                best_assignment = chunk[at]
        assert best_assignment is not None
        # Report with the reference operation sequence (bit-identical to
        # PowerModel.power) rather than the batched einsum value.
        return SearchResult(
            best_assignment, compiled.power(best_assignment), evaluations
        )

    for candidate in candidates:
        value = cost(candidate)
        evaluations += 1
        if value < best_power:
            best_power = value
            best_assignment = candidate
    assert best_assignment is not None
    return SearchResult(best_assignment, best_power, evaluations)


def greedy_descent(
    cost: SearchCost,
    start: SignedPermutation,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    max_rounds: int = 1000,
) -> SearchResult:
    """Best-improvement hill climbing over swaps and inversion toggles.

    A move must beat the current power by more than
    :data:`RELATIVE_IMPROVEMENT_TOL` (relative) to be taken, so termination
    is unit-scale independent.
    """
    n = start.n_bits
    constraints.validate_for(n)
    if not constraints.allows(start):
        raise ValueError("start assignment violates the constraints")
    free = constraints.free_bits(n)
    invertible = constraints.invertible_bits(n) if with_inversions else ()
    compiled = as_compiled(cost)
    if compiled is not None:
        return _greedy_descent_fast(
            compiled, start, free, invertible, max_rounds
        )

    scalar_cost = _cost_callable(cost)
    current = start
    current_power = scalar_cost(current)
    evaluations = 1
    for _ in range(max_rounds):
        threshold = RELATIVE_IMPROVEMENT_TOL * abs(current_power)
        best_move: Optional[SignedPermutation] = None
        best_power = current_power
        for a_idx in range(len(free)):
            for b_idx in range(a_idx + 1, len(free)):
                candidate = current.with_swapped_bits(free[a_idx], free[b_idx])
                value = scalar_cost(candidate)
                evaluations += 1
                if value < best_power - threshold:
                    best_power = value
                    best_move = candidate
        for bit in invertible:
            candidate = current.with_toggled_inversion(bit)
            value = scalar_cost(candidate)
            evaluations += 1
            if value < best_power - threshold:
                best_power = value
                best_move = candidate
        if best_move is None:
            break
        current, current_power = best_move, best_power
    return SearchResult(current, current_power, evaluations)


def _greedy_descent_fast(
    compiled: CompiledPowerModel,
    start: SignedPermutation,
    free: Sequence[int],
    invertible: Sequence[int],
    max_rounds: int,
) -> SearchResult:
    """Delta-cost best-improvement descent, one batched pricing per round."""
    state = compiled.start(start)
    evaluations = 1
    pairs = np.array(
        [
            (free[a_idx], free[b_idx])
            for a_idx in range(len(free))
            for b_idx in range(a_idx + 1, len(free))
        ],
        dtype=np.intp,
    ).reshape(-1, 2)
    toggles = np.asarray(invertible, dtype=np.intp)
    for _ in range(max_rounds):
        threshold = RELATIVE_IMPROVEMENT_TOL * abs(state.power)
        chunks = []
        if len(pairs):
            chunks.append(state.delta_swaps(pairs))
        if len(toggles):
            chunks.append(state.delta_toggles(toggles))
        if not chunks:
            break
        evaluations += len(pairs) + len(toggles)
        deltas = np.concatenate(chunks)
        at = int(np.argmin(deltas))
        best_delta = float(deltas[at])
        if best_delta >= -threshold:
            break
        if at < len(pairs):
            state.swap(int(pairs[at, 0]), int(pairs[at, 1]), best_delta)
        else:
            state.toggle(int(toggles[at - len(pairs)]), best_delta)
    assignment = state.assignment()
    return SearchResult(assignment, compiled.power(assignment), evaluations)


def _propose_move(
    rng: np.random.Generator,
    free: Sequence[int],
    invertible: Sequence[int],
) -> Tuple[str, int, int]:
    """One uniform random local move (shared by the naive and fast paths).

    The draw sequence (one uniform for the move-type choice when both move
    types are available, then the index draws) is part of the reproducible
    behaviour of the annealer: both evaluation paths consume the generator
    identically.
    """
    use_inversion = (
        len(invertible) > 0
        and (len(free) < 2 or rng.random() < _TOGGLE_FRACTION)
    )
    if use_inversion:
        bit = invertible[rng.integers(len(invertible))]
        return ("toggle", int(bit), 0)
    a, b = rng.choice(len(free), size=2, replace=False)
    return ("swap", int(free[a]), int(free[b]))


def _draw_proposals(
    rng: np.random.Generator,
    batch: int,
    free: np.ndarray,
    invertible: np.ndarray,
) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray],
           Optional[np.ndarray], np.ndarray]:
    """Pre-draw a batch of annealing proposals and acceptance uniforms.

    Returns ``(use_toggle, toggle_bits, swap_a, swap_b, accept_u)``, each of
    length ``batch`` (the move arrays are ``None`` when that move type is
    unavailable). Both evaluation paths consume the generator through this
    one function, in a fixed draw order that does not depend on which
    proposals end up being used, so the naive and fast paths see identical
    proposal sequences for the same generator state.
    """
    can_swap = len(free) >= 2
    can_toggle = len(invertible) > 0
    if can_toggle and can_swap:
        use_toggle = rng.random(batch) < _TOGGLE_FRACTION
    elif can_toggle:
        use_toggle = np.ones(batch, dtype=bool)
    else:
        use_toggle = np.zeros(batch, dtype=bool)
    toggle_bits = (
        invertible[rng.integers(0, len(invertible), batch)]
        if can_toggle else None
    )
    if can_swap:
        first = rng.integers(0, len(free), batch)
        second = rng.integers(0, len(free) - 1, batch)
        # Uniform ordered pair without replacement: shift the second draw
        # past the first index.
        second = second + (second >= first)
        swap_a, swap_b = free[first], free[second]
    else:
        swap_a = swap_b = None
    accept_u = rng.random(batch)
    return use_toggle, toggle_bits, swap_a, swap_b, accept_u


def _apply_move(
    assignment: SignedPermutation, move: Tuple[str, int, int]
) -> SignedPermutation:
    if move[0] == "toggle":
        return assignment.with_toggled_inversion(move[1])
    return assignment.with_swapped_bits(move[1], move[2])


def simulated_annealing(
    cost: SearchCost,
    n_bits: int,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    start: Optional[SignedPermutation] = None,
    rng: Optional[np.random.Generator] = None,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.93,
    steps_per_temperature: Optional[int] = None,
    min_temperature_ratio: float = 1e-4,
    polish: bool = True,
    n_restarts: int = 1,
    n_jobs: int = 1,
    deadline_s: Optional[float] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 4,
    resume_from: Optional[Union[str, Path]] = None,
    max_chain_retries: int = 2,
    population: Optional[bool] = None,
) -> SearchResult:
    """Simulated annealing over signed permutations (the paper's choice).

    Moves are uniform random bit-pair swaps and (when allowed) inversion
    toggles. The initial temperature defaults to the standard deviation of
    the cost over a random-walk warm-up, the schedule is geometric, and the
    best-seen assignment is optionally polished with :func:`greedy_descent`.

    Proposals are consumed in windows (see the module docstring): the best
    accepted move per window is committed, plateau moves — ``|delta|``
    indistinguishable from floating-point noise — are rejected, and
    ``SearchResult.evaluations`` counts consumed proposals. The chain is
    identical whether the objective is a scalar callable or a power model;
    only the pricing differs (per proposal vs per window), so a fixed seed
    yields bit-identical best powers on both paths.

    ``n_restarts > 1`` runs that many independent chains seeded from the
    parent generator's spawned seed sequences (deterministic for a fixed
    generator state regardless of scheduling) and returns the best result;
    ``n_jobs > 1`` runs the chains on a thread pool — with a
    :class:`PowerModel` objective each chain owns its search state and only
    shares the read-only compiled kernels, with a generic callable the
    caller must ensure the callable is thread-safe.

    ``population`` selects how multiple restarts are scheduled. ``True``
    advances all chains in lockstep, pricing each round's outstanding
    proposal windows across every chain with one batched
    :class:`~repro.core.fastpower.PopulationState` kernel call (requires a
    power-model cost and no checkpointing); ``False`` keeps the
    one-chain-at-a-time supervisor. The default ``None`` picks population
    mode automatically whenever it applies (``n_restarts > 1``, power-model
    cost, no checkpoint store, ``n_jobs == 1``). The modes are
    decision-identical — same best powers, assignments, and evaluation
    counts per seed — except under an interrupt or deadline, where
    population mode snapshots every chain near the same temperature level
    instead of giving earlier chains more budget (``completed=False``
    either way). Chain crashes are retried through the same supervisor in
    both modes, standalone and bit-identical.

    Fault tolerance (see ``docs/robustness.md``):

    * ``deadline_s`` — wall-clock budget; on expiry the search returns its
      best-so-far with ``completed=False`` instead of raising.
    * ``checkpoint_dir`` — each chain writes a versioned, checksummed
      checkpoint every ``checkpoint_every`` temperature levels through
      :class:`repro.runtime.CheckpointStore`; when the directory already
      holds valid checkpoints of the same run configuration, the search
      *resumes* from them, and the resumed run is bit-identical to an
      uninterrupted one. ``resume_from`` is an alias that also sets the
      checkpoint directory.
    * crashed chains (``n_restarts > 1``) are retried up to
      ``max_chain_retries`` times from a freshly rebuilt chain generator
      (or their last checkpoint), so retries do not change the result;
      chains that still fail are dropped with a warning and counted in
      ``SearchResult.n_failed_chains``.
    * a ``KeyboardInterrupt``/SIGINT is converted into a clean best-so-far
      return (``completed=False``) with a final resumable checkpoint.
    """
    constraints.validate_for(n_bits)
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if deadline_s is not None and deadline_s < 0:
        raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if max_chain_retries < 0:
        raise ValueError(f"max_chain_retries must be >= 0, got {max_chain_retries}")
    rng = ensure_rng(rng)
    if start is None:
        start = _constrained_identity(n_bits, constraints)
    elif not constraints.allows(start):
        raise ValueError("start assignment violates the constraints")
    free = constraints.free_bits(n_bits)
    invertible = constraints.invertible_bits(n_bits) if with_inversions else ()
    if len(free) < 2 and not invertible:
        return SearchResult(start, _cost_callable(cost)(start), 1)
    if steps_per_temperature is None:
        steps_per_temperature = 25 * n_bits

    if resume_from is not None and checkpoint_dir is None:
        checkpoint_dir = resume_from
    store: Optional[CheckpointStore] = None
    if checkpoint_dir is not None:
        store = CheckpointStore(
            Path(checkpoint_dir),
            kind="simulated-annealing",
            fingerprint={
                "n_bits": n_bits,
                "with_inversions": with_inversions,
                "pinned": constraints.pinned,
                "no_invert": constraints.no_invert,
                "start": _assignment_payload(start),
                "initial_temperature": initial_temperature,
                "cooling": cooling,
                "steps_per_temperature": steps_per_temperature,
                "min_temperature_ratio": min_temperature_ratio,
                "n_restarts": n_restarts,
            },
        )
    control = RunControl(
        deadline=Deadline(deadline_s) if deadline_s is not None else None
    )

    compiled = as_compiled(cost)
    if population:
        if compiled is None:
            raise ValueError(
                "population annealing prices proposals through the compiled "
                "power model; pass a PowerModel/CompiledPowerModel cost or "
                "population=False"
            )
        if store is not None:
            raise ValueError(
                "population annealing does not checkpoint per-chain state; "
                "use population=False with checkpoint_dir/resume_from"
            )
    if n_restarts == 1:
        # The single chain consumes the caller's generator directly (so
        # generator state keeps flowing); retries are a multi-chain
        # feature — an injected crash propagates here.
        return _anneal_chain(
            cost, compiled, start, free, invertible, rng,
            initial_temperature, cooling, steps_per_temperature,
            min_temperature_ratio, polish, n_bits, with_inversions,
            constraints, control=control, store=store,
            checkpoint_every=checkpoint_every,
        )

    supervisor = ChainSupervisor(
        rng, n_restarts, n_jobs=n_jobs, max_retries=max_chain_retries,
        control=control, name="annealing chain",
    )

    use_population = (
        population
        if population is not None
        else (compiled is not None and store is None and n_jobs == 1)
    )
    population_results: Dict[int, SearchResult] = {}
    population_errors: Dict[int, BaseException] = {}
    if use_population:
        # The lockstep pass shares the supervisor's spawned per-chain seed
        # sequences, so its chains consume the exact generator streams the
        # thread-per-chain path would. Its results (and injected setup
        # crashes) are then replayed through the supervisor below as each
        # chain's attempt 0, which keeps the retry/degradation/interrupt
        # bookkeeping — and its log lines — byte-identical between modes.
        population_results, population_errors = _anneal_population(
            compiled, start, free, invertible,
            [supervisor.generator_for(index) for index in range(n_restarts)],
            initial_temperature, cooling, steps_per_temperature,
            min_temperature_ratio, n_bits, control,
        )

    def run_chain(
        index: int,
        chain_rng: np.random.Generator,
        chain_control: RunControl,
        attempt: int,
    ) -> SearchResult:
        if attempt == 0:
            if index in population_errors:
                raise population_errors[index]
            if index in population_results:
                return population_results[index]
        # Chains are polished once at the end, on the winner only. A
        # population chain that crashed at setup retries here standalone —
        # decision-identical, since both modes take the same decisions
        # from the same rebuilt generator.
        return _anneal_chain(
            cost, compiled, start, free, invertible, chain_rng,
            initial_temperature, cooling, steps_per_temperature,
            min_temperature_ratio, False, n_bits, with_inversions,
            constraints, control=chain_control, chain_id=index,
            attempt=attempt, store=store, checkpoint_every=checkpoint_every,
        )

    report = supervisor.run(run_chain)
    results = report.results()
    if not results:
        raise RuntimeError(
            f"all {n_restarts} annealing chains failed "
            f"(last error: {report.outcomes[-1].error})"
        )
    best = min(results, key=lambda result: result.power)
    evaluations = sum(result.evaluations for result in results)
    completed = (
        all(result.completed for result in results)
        and not report.interrupted
        and not control.should_stop()
    )
    best_assignment, best_power = best.assignment, best.power
    if polish and completed:
        polished = greedy_descent(
            compiled if compiled is not None else cost,
            best_assignment,
            with_inversions=with_inversions,
            constraints=constraints,
        )
        evaluations += polished.evaluations
        if polished.power < best_power:
            best_assignment, best_power = polished.assignment, polished.power
    return SearchResult(
        best_assignment, best_power, evaluations,
        completed=completed, n_failed_chains=report.n_failed,
    )


def _anneal_chain(
    cost: SearchCost,
    compiled: Optional[CompiledPowerModel],
    start: SignedPermutation,
    free: Sequence[int],
    invertible: Sequence[int],
    rng: np.random.Generator,
    initial_temperature: Optional[float],
    cooling: float,
    steps_per_temperature: Optional[int],
    min_temperature_ratio: float,
    polish: bool,
    n_bits: int,
    with_inversions: bool,
    constraints: AssignmentConstraints,
    control: Optional[RunControl] = None,
    chain_id: int = 0,
    attempt: int = 0,
    store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 4,
) -> SearchResult:
    """One annealing chain; delta-evaluated when ``compiled`` is given.

    When ``store`` is given the chain snapshots itself at temperature-level
    boundaries *before* consuming that level's draws, so a resumed chain
    restores the snapshot's RNG state and replays the exact draw sequence
    of an uninterrupted run — the resume is bit-identical.
    """
    if steps_per_temperature is None:
        steps_per_temperature = 25 * n_bits
    chain_name = f"chain_{chain_id:02d}"
    fault_point("chain_crash", chain=chain_id, attempt=attempt)

    resumed: Optional[Dict[str, Any]] = None
    if store is not None:
        checkpoint = store.load(chain_name)
        if checkpoint is not None:
            if checkpoint.payload.get("phase") == "done":
                payload = checkpoint.payload
                logger.info("%s already finished; reusing result", chain_name)
                return SearchResult(
                    _assignment_from_payload(payload["best"]),
                    float(payload["best_power"]),
                    int(payload["evaluations"]),
                    completed=True,
                )
            resumed = checkpoint.payload

    level = 0
    temperature = initial_temperature
    if resumed is not None:
        try:
            current = _assignment_from_payload(resumed["current"])
            best = _assignment_from_payload(resumed["best"])
            best_power = float(resumed["best_power"])
            current_power = float(resumed["current_power"])
            evaluations = int(resumed["evaluations"])
            initial_temperature = float(resumed["initial_temperature"])
            temperature = float(resumed["temperature"])
            level = int(resumed["level"])
            restore_rng_state(rng, resumed["rng"])
        except (CheckpointError, KeyError, TypeError, ValueError) as exc:
            logger.warning(
                "cannot resume %s from its checkpoint (%s); starting fresh",
                chain_name, exc,
            )
            resumed = None

    state: Optional[SearchState] = None
    scalar_cost: Optional[CostFunction] = None
    if resumed is not None:
        logger.info("resuming %s at temperature level %d", chain_name, level)
        if compiled is not None:
            state = compiled.start(current)
            # The fast path re-derives the state power from scratch after
            # every applied move, so this matches the interrupted chain's
            # running current_power bit for bit.
            current_power = state.power
        else:
            scalar_cost = _cost_callable(cost)
    else:
        if compiled is not None:
            state = compiled.start(start)
            current_power = state.power
            current = start
        else:
            scalar_cost = _cost_callable(cost)
            current = start
            current_power = scalar_cost(current)
        evaluations = 1
        best = current
        best_power = current_power

    interrupted = False
    stopped = False
    boundary: Optional[Dict[str, Any]] = None
    free_arr = np.asarray(free, dtype=np.intp)
    inv_arr = np.asarray(invertible, dtype=np.intp)
    try:
        if resumed is None:
            if initial_temperature is None:
                # Warm-up random walk to scale the temperature to the
                # cost surface.
                samples = []
                probe = current
                for _ in range(max(20, 2 * n_bits)):
                    move = _propose_move(rng, free, invertible)
                    if state is not None:
                        if move[0] == "toggle":
                            state.toggle(move[1])
                        else:
                            state.swap(move[1], move[2])
                        value = state.power
                        probe = state.assignment()
                    else:
                        probe = _apply_move(probe, move)
                        value = scalar_cost(probe)
                    evaluations += 1
                    samples.append(value)
                    if value < best_power:
                        best, best_power = probe, value
                spread = float(np.std(samples))
                initial_temperature = (
                    spread if spread > 0.0 else abs(best_power) * 0.01
                )
                current, current_power = best, best_power
                if state is not None:
                    # Restart the chain from the best warm-up sample.
                    state = compiled.start(best)
                    current_power = state.power
                    best_power = current_power
            temperature = initial_temperature

        floor = initial_temperature * min_temperature_ratio
        while temperature > floor and temperature > 0.0:
            if state is not None:
                current = state.assignment()
            # Boundary snapshot BEFORE this level's draws: a resume
            # restores the generator here and replays the level whole.
            boundary = {
                "phase": "annealing",
                "level": level,
                "temperature": temperature,
                "initial_temperature": initial_temperature,
                "current": _assignment_payload(current),
                "current_power": current_power,
                "best": _assignment_payload(best),
                "best_power": best_power,
                "evaluations": evaluations,
                "rng": encode_rng_state(rng),
            }
            if store is not None and level % checkpoint_every == 0:
                store.save(chain_name, boundary, step=level)
            fault_point("interrupt_at", chain=chain_id, level=level)
            if control is not None and control.should_stop():
                stopped = True
                break
            accepted = 0
            # One draw call covers the whole temperature level; the inner
            # loop slices it into pricing batches. Proposals are priced in
            # batches against the *current* state: each batch runs one
            # Metropolis accept test per proposal and commits the best
            # accepted move (the batched-rejection chain). Both paths run
            # this same chain — the fast path prices a batch in one
            # vectorized kernel call, the naive path with one full
            # evaluation per proposal — so for a fixed generator state
            # they visit identical assignments.
            use_toggle, toggle_bits, swap_a, swap_b, accept_u = (
                _draw_proposals(rng, steps_per_temperature, free_arr, inv_arr)
            )
            # Metropolis acceptance u < exp(-delta/T) recast as
            # delta <= -T*log(u): one comparison per proposal instead of
            # an exp per batch (identical decisions; u is never exactly 1).
            thresholds = -temperature * np.log(accept_u)
            if state is not None:
                # Partition the level's proposals by move type once;
                # pricing rounds then address the partitions through
                # sorted index ranges. The whole remaining level is priced
                # in one kernel call per round — valid for every batch
                # until a move commits (the state is unchanged up to that
                # point), after which only the suffix is re-priced. Levels
                # with few acceptances (the regime the cooled-down chain
                # spends most of its time in) cost one or two kernel calls
                # instead of one per batch.
                tog_idx = np.flatnonzero(use_toggle)
                sw_idx = np.flatnonzero(~use_toggle)
                tog_bits_lvl = toggle_bits[tog_idx] if len(tog_idx) else None
                sw_pairs_lvl = (
                    np.column_stack((swap_a[sw_idx], swap_b[sw_idx]))
                    if len(sw_idx) else None
                )
                offset = 0
                # Pricing horizon in batches: when commits are frequent
                # most of a long horizon would be re-priced anyway, so
                # start at one batch and double while nothing commits
                # (cold levels then need O(log) kernel calls), resetting
                # after each commit.
                horizon = 1
                while offset < steps_per_temperature:
                    span = min(
                        horizon * _PROPOSAL_BATCH,
                        steps_per_temperature - offset,
                    )
                    end = offset + span
                    t_lo, t_hi = np.searchsorted(tog_idx, (offset, end))
                    s_lo, s_hi = np.searchsorted(sw_idx, (offset, end))
                    deltas = np.empty(span)
                    if t_hi > t_lo:
                        deltas[tog_idx[t_lo:t_hi] - offset] = (
                            state.delta_toggles(tog_bits_lvl[t_lo:t_hi])
                        )
                    if s_hi > s_lo:
                        deltas[sw_idx[s_lo:s_hi] - offset] = (
                            state.delta_swaps(sw_pairs_lvl[s_lo:s_hi])
                        )
                    plateau = _PLATEAU_REL_TOL * abs(current_power)
                    accept = (
                        deltas <= thresholds[offset:end]
                    ) & (np.abs(deltas) > plateau)
                    committed = False
                    for woff in range(0, span, _PROPOSAL_BATCH):
                        wlen = min(_PROPOSAL_BATCH, span - woff)
                        wacc = accept[woff:woff + wlen]
                        if not wacc.any():
                            continue
                        wdel = deltas[woff:woff + wlen]
                        hit = int(np.argmin(np.where(wacc, wdel, np.inf)))
                        idx = offset + woff + hit
                        if use_toggle[idx]:
                            state.toggle(
                                int(toggle_bits[idx]), float(wdel[hit])
                            )
                        else:
                            state.swap(
                                int(swap_a[idx]), int(swap_b[idx]),
                                float(wdel[hit]),
                            )
                        current_power = state.power
                        if current_power < best_power:
                            best, best_power = (
                                state.assignment(), current_power
                            )
                        accepted += 1
                        evaluations += woff + wlen
                        offset += woff + wlen
                        horizon = 1
                        committed = True
                        break
                    if not committed:
                        evaluations += span
                        offset = end
                        horizon *= 2
                temperature *= cooling
                level += 1
                if accepted == 0 and temperature < initial_temperature * 1e-2:
                    break
                continue
            for offset in range(0, steps_per_temperature, _PROPOSAL_BATCH):
                batch = min(_PROPOSAL_BATCH, steps_per_temperature - offset)
                best_i = -1
                best_delta = math.inf
                best_candidate = None
                best_value = math.inf
                plateau = _PLATEAU_REL_TOL * abs(current_power)
                for i in range(offset, offset + batch):
                    if use_toggle[i]:
                        candidate = current.with_toggled_inversion(
                            int(toggle_bits[i])
                        )
                    else:
                        candidate = current.with_swapped_bits(
                            int(swap_a[i]), int(swap_b[i])
                        )
                    value = scalar_cost(candidate)
                    evaluations += 1
                    delta = value - current_power
                    if (
                        delta <= thresholds[i]
                        and abs(delta) > plateau
                        and delta < best_delta
                    ):
                        best_i = i
                        best_delta = delta
                        best_candidate, best_value = candidate, value
                if best_i < 0:
                    continue
                current, current_power = best_candidate, best_value
                if best_value < best_power:
                    best, best_power = best_candidate, best_value
                accepted += 1
            temperature *= cooling
            level += 1
            if accepted == 0 and temperature < initial_temperature * 1e-2:
                break
    except KeyboardInterrupt:
        # Clean best-so-far return; the final checkpoint below keeps the
        # run resumable.
        interrupted = True
        logger.warning(
            "%s interrupted at level %d; returning best-so-far",
            chain_name, level,
        )
        if control is not None:
            control.request_stop(interrupted=True)

    completed = not interrupted and not stopped
    if polish and completed:
        try:
            polished = greedy_descent(
                compiled if compiled is not None else cost,
                best,
                with_inversions=with_inversions,
                constraints=constraints,
            )
            evaluations += polished.evaluations
            if polished.power < best_power:
                best, best_power = polished.assignment, polished.power
        except KeyboardInterrupt:
            completed = False
            if control is not None:
                control.request_stop(interrupted=True)
    if compiled is not None:
        # Drift-free report: re-derive the winner's power with the
        # reference operation sequence.
        best_power = compiled.power(best)
    if store is not None:
        if completed:
            store.save(
                chain_name,
                {
                    "phase": "done",
                    "best": _assignment_payload(best),
                    "best_power": best_power,
                    "evaluations": evaluations,
                },
                step=level,
            )
        elif boundary is not None:
            store.save(chain_name, boundary, step=int(boundary["level"]))
    return SearchResult(best, best_power, evaluations, completed=completed)


class _PopulationChain:
    """Lockstep bookkeeping of one population-annealing chain.

    Mirrors the local variables of :func:`_anneal_chain`'s fast path —
    schedule position (level, temperature, floor), the level's pre-drawn
    proposals partitioned by move type, and the window cursor
    (offset/horizon/accepted) — so the lockstep driver can suspend a chain
    between pricing rounds exactly where the sequential loop would be.
    """

    __slots__ = (
        "index", "row", "rng", "best", "best_power", "current_power",
        "evaluations", "temperature", "initial_temperature", "floor",
        "level", "done", "in_level",
        "use_toggle", "toggle_bits", "swap_a", "swap_b", "thresholds",
        "tog_idx", "sw_idx", "tog_bits_lvl", "sw_pairs_lvl",
        "offset", "horizon", "accepted",
    )

    def __init__(self, index: int, rng: np.random.Generator) -> None:
        self.index = index
        self.row = -1
        self.rng = rng
        self.done = False
        self.in_level = False
        self.level = 0
        self.evaluations = 1
        self.accepted = 0


def _anneal_population(
    compiled: CompiledPowerModel,
    start: SignedPermutation,
    free: Sequence[int],
    invertible: Sequence[int],
    generators: Sequence[np.random.Generator],
    initial_temperature: Optional[float],
    cooling: float,
    steps_per_temperature: int,
    min_temperature_ratio: float,
    n_bits: int,
    control: Optional[RunControl],
) -> Tuple[Dict[int, SearchResult], Dict[int, BaseException]]:
    """All restart chains in lockstep, priced through one population state.

    Runs the exact batched-rejection chain of :func:`_anneal_chain`'s fast
    path for every generator, but schedules the chains breadth-first: each
    round collects the current proposal window of every still-running
    chain and prices all of them with one
    :meth:`PopulationState.delta_toggles` and one
    :meth:`PopulationState.delta_swaps` call. Per chain the draw sequence,
    accept tests, plateau filter, window commits, horizon doubling, and
    cooling schedule are identical to the sequential code, and the
    population kernels are bit-equal to :class:`SearchState`'s, so every
    chain returns the same :class:`SearchResult` it would have returned on
    its own thread.

    Returns ``(results, errors)`` keyed by chain index: a chain either
    produced a result or raised at its setup fault point (the caller
    replays either through the :class:`ChainSupervisor` as attempt 0).
    """
    results: Dict[int, SearchResult] = {}
    errors: Dict[int, BaseException] = {}
    chains: list = []
    free_arr = np.asarray(free, dtype=np.intp)
    inv_arr = np.asarray(invertible, dtype=np.intp)

    def finish(chain: _PopulationChain, completed: bool) -> None:
        # Drift-free report, as in _anneal_chain: re-derive the winner's
        # power with the reference operation sequence.
        results[chain.index] = SearchResult(
            chain.best, compiled.power(chain.best), chain.evaluations,
            completed=completed,
        )
        chain.done = True

    def interrupt(chain: _PopulationChain) -> None:
        logger.warning(
            "chain_%02d interrupted at level %d; returning best-so-far",
            chain.index, chain.level,
        )
        if control is not None:
            control.request_stop(interrupted=True)
        finish(chain, completed=False)

    # -- per-chain setup and warm-up (sequential, consumes only the
    # chain's own generator — identical to _anneal_chain's preamble) -----------
    starts = []
    for index, rng in enumerate(generators):
        chain = _PopulationChain(index, rng)
        try:
            fault_point("chain_crash", chain=index, attempt=0)
        except KeyboardInterrupt:
            raise
        except Exception as error:
            errors[index] = error
            continue
        chain.best = start
        try:
            state = compiled.start(start)
            chain.current_power = state.power
            chain.best_power = chain.current_power
            chain_t = initial_temperature
            if chain_t is None:
                samples = []
                for _ in range(max(20, 2 * n_bits)):
                    move = _propose_move(rng, free, invertible)
                    if move[0] == "toggle":
                        state.toggle(move[1])
                    else:
                        state.swap(move[1], move[2])
                    value = state.power
                    probe = state.assignment()
                    chain.evaluations += 1
                    samples.append(value)
                    if value < chain.best_power:
                        chain.best, chain.best_power = probe, value
                spread = float(np.std(samples))
                chain_t = spread if spread > 0.0 else abs(chain.best_power) * 0.01
                # Restart the chain from the best warm-up sample.
                state = compiled.start(chain.best)
                chain.current_power = state.power
                chain.best_power = chain.current_power
            chain.initial_temperature = chain_t
            chain.temperature = chain_t
            chain.floor = chain_t * min_temperature_ratio
        except KeyboardInterrupt:
            interrupt(chain)
            continue
        chain.row = len(starts)
        starts.append(chain.best if initial_temperature is None else start)
        chains.append(chain)

    if not chains:
        return results, errors
    pop = PopulationState(compiled, starts)

    def start_level(chain: _PopulationChain) -> None:
        """Level boundary: stop checks, then pre-draw the level's proposals."""
        if not (chain.temperature > chain.floor and chain.temperature > 0.0):
            finish(chain, completed=True)
            return
        fault_point("interrupt_at", chain=chain.index, level=chain.level)
        if control is not None and control.should_stop():
            finish(chain, completed=False)
            return
        use_toggle, toggle_bits, swap_a, swap_b, accept_u = _draw_proposals(
            chain.rng, steps_per_temperature, free_arr, inv_arr
        )
        chain.use_toggle = use_toggle
        chain.toggle_bits = toggle_bits
        chain.swap_a = swap_a
        chain.swap_b = swap_b
        chain.thresholds = -chain.temperature * np.log(accept_u)
        chain.tog_idx = np.flatnonzero(use_toggle)
        chain.sw_idx = np.flatnonzero(~use_toggle)
        chain.tog_bits_lvl = (
            toggle_bits[chain.tog_idx] if len(chain.tog_idx) else None
        )
        chain.sw_pairs_lvl = (
            np.column_stack((swap_a[chain.sw_idx], swap_b[chain.sw_idx]))
            if len(chain.sw_idx) else None
        )
        chain.offset = 0
        chain.horizon = 1
        chain.accepted = 0
        chain.in_level = True

    try:
        while True:
            for chain in chains:
                if not chain.done and not chain.in_level:
                    try:
                        start_level(chain)
                    except KeyboardInterrupt:
                        interrupt(chain)
            pricing = [chain for chain in chains if not chain.done]
            if not pricing:
                break

            # -- one batched pricing round across every running chain ----------
            spans = []
            tog_rows: list = []
            tog_bits: list = []
            sw_rows: list = []
            sw_pairs: list = []
            for chain in pricing:
                span = min(
                    chain.horizon * _PROPOSAL_BATCH,
                    steps_per_temperature - chain.offset,
                )
                end = chain.offset + span
                t_lo, t_hi = np.searchsorted(
                    chain.tog_idx, (chain.offset, end)
                )
                s_lo, s_hi = np.searchsorted(chain.sw_idx, (chain.offset, end))
                spans.append((chain, span, end, t_lo, t_hi, s_lo, s_hi))
                if t_hi > t_lo:
                    tog_rows.append(
                        np.full(t_hi - t_lo, chain.row, dtype=np.intp)
                    )
                    tog_bits.append(chain.tog_bits_lvl[t_lo:t_hi])
                if s_hi > s_lo:
                    sw_rows.append(
                        np.full(s_hi - s_lo, chain.row, dtype=np.intp)
                    )
                    sw_pairs.append(chain.sw_pairs_lvl[s_lo:s_hi])
            tog_deltas = (
                pop.delta_toggles(
                    np.concatenate(tog_rows), np.concatenate(tog_bits)
                )
                if tog_rows else None
            )
            sw_deltas = (
                pop.delta_swaps(
                    np.concatenate(sw_rows), np.concatenate(sw_pairs)
                )
                if sw_rows else None
            )

            # -- per-chain window scan and commit, exactly as sequential -------
            tog_off = 0
            sw_off = 0
            for chain, span, end, t_lo, t_hi, s_lo, s_hi in spans:
                deltas = np.empty(span)
                if t_hi > t_lo:
                    deltas[chain.tog_idx[t_lo:t_hi] - chain.offset] = (
                        tog_deltas[tog_off:tog_off + (t_hi - t_lo)]
                    )
                    tog_off += t_hi - t_lo
                if s_hi > s_lo:
                    deltas[chain.sw_idx[s_lo:s_hi] - chain.offset] = (
                        sw_deltas[sw_off:sw_off + (s_hi - s_lo)]
                    )
                    sw_off += s_hi - s_lo
                plateau = _PLATEAU_REL_TOL * abs(chain.current_power)
                accept = (
                    deltas <= chain.thresholds[chain.offset:end]
                ) & (np.abs(deltas) > plateau)
                committed = False
                for woff in range(0, span, _PROPOSAL_BATCH):
                    wlen = min(_PROPOSAL_BATCH, span - woff)
                    wacc = accept[woff:woff + wlen]
                    if not wacc.any():
                        continue
                    wdel = deltas[woff:woff + wlen]
                    hit = int(np.argmin(np.where(wacc, wdel, np.inf)))
                    idx = chain.offset + woff + hit
                    if chain.use_toggle[idx]:
                        pop.toggle(chain.row, int(chain.toggle_bits[idx]))
                    else:
                        pop.swap(
                            chain.row, int(chain.swap_a[idx]),
                            int(chain.swap_b[idx]),
                        )
                    chain.current_power = float(pop.powers[chain.row])
                    if chain.current_power < chain.best_power:
                        chain.best = pop.assignment(chain.row)
                        chain.best_power = chain.current_power
                    chain.accepted += 1
                    chain.evaluations += woff + wlen
                    chain.offset += woff + wlen
                    chain.horizon = 1
                    committed = True
                    break
                if not committed:
                    chain.evaluations += span
                    chain.offset = end
                    chain.horizon *= 2
                if chain.offset >= steps_per_temperature:
                    chain.temperature *= cooling
                    chain.level += 1
                    chain.in_level = False
                    if (
                        chain.accepted == 0
                        and chain.temperature
                        < chain.initial_temperature * 1e-2
                    ):
                        finish(chain, completed=True)
    except KeyboardInterrupt:
        # An asynchronous Ctrl-C mid-round: every unfinished chain returns
        # its best-so-far, like the sequential handler.
        for chain in chains:
            if not chain.done:
                interrupt(chain)
    return results, errors


def optimize_power_model(
    model: PowerModel,
    method: str = "sa",
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    rng: Optional[np.random.Generator] = None,
    n_restarts: int = 1,
    n_jobs: int = 1,
    deadline_s: Optional[float] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume_from: Optional[Union[str, Path]] = None,
) -> SearchResult:
    """Convenience wrapper: minimize a :class:`PowerModel` directly.

    Hands the model itself to the search, so all methods take the compiled
    delta-cost/batched fast path. The fault-tolerance knobs (``deadline_s``,
    ``checkpoint_dir``, ``resume_from``) are forwarded to
    :func:`simulated_annealing`; the other methods run to completion.
    """
    if method == "sa":
        return simulated_annealing(
            model,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
            rng=rng,
            n_restarts=n_restarts,
            n_jobs=n_jobs,
            deadline_s=deadline_s,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
        )
    if method == "greedy":
        start = _constrained_identity(model.n_lines, constraints)
        return greedy_descent(
            model, start, with_inversions=with_inversions,
            constraints=constraints,
        )
    if method == "exhaustive":
        return exhaustive_search(
            model,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
        )
    raise ValueError(f"unknown optimization method {method!r}")


#: Exactness discipline (REP3xx, see ``docs/static_analysis.md``): every
#: search entry point returns the assignment a paper table is built from,
#: so for a fixed model/seed the result must be reproducible — no
#: wall-clock values, unordered iteration, or undocumented float
#: tie-breaks may decide it.
REPRO_SIGNATURES = {
    "@deterministic": [
        "exhaustive_search",
        "greedy_descent",
        "simulated_annealing",
        "optimize_power_model",
    ],
}
