"""Partitioning wide buses across several TSV bundles.

Real 3-D links are often wider than one TSV array: the paper notes that
"overall up to several hundreds of TSVs exist in modern 3D ICs" and that
the optimization "is executed for each TSV bundle individually". The
*global* net-to-bundle split is fixed by routing; but when the designer does
have freedom, which bits should share a bundle matters: the coupling term
of Eq. 13 can only be exploited *within* an array, so correlated bit groups
should travel together.

This module provides the bundle-level layer:

* :func:`partition_bits` — split a wide bus into per-array groups
  (``contiguous``, ``interleaved``, or ``correlation``-clustered);
* :func:`optimize_partitioned` — per-bundle assignment optimization and an
  aggregate report (bundles are assumed electrically independent — they are
  placed far apart relative to the intra-array pitch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import SignedPermutation
from repro.core.pipeline import AssignmentReport, optimize_assignment
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

STRATEGIES = ("contiguous", "interleaved", "correlation")


def partition_bits(
    n_bits: int,
    group_sizes: Sequence[int],
    strategy: str = "contiguous",
    stats: Optional[BitStatistics] = None,
) -> List[List[int]]:
    """Split bus bits into groups of the given sizes.

    * ``contiguous`` — bits in order (LSB group first);
    * ``interleaved`` — round-robin across groups;
    * ``correlation`` — greedy clustering on ``|E{db_i db_j}|`` (requires
      ``stats``): each group is seeded with the most-correlated unassigned
      bit and grown by maximum accumulated correlation, mirroring the
      paper's recursive coupling rule at bundle level.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose {STRATEGIES}")
    if sum(group_sizes) != n_bits:
        raise ValueError(
            f"group sizes sum to {sum(group_sizes)}, bus has {n_bits} bits"
        )
    if any(size < 1 for size in group_sizes):
        raise ValueError("every group needs at least one bit")

    if strategy == "contiguous":
        groups = []
        start = 0
        for size in group_sizes:
            groups.append(list(range(start, start + size)))
            start += size
        return groups

    if strategy == "interleaved":
        groups: List[List[int]] = [[] for _ in group_sizes]
        sizes = list(group_sizes)
        g = 0
        for bit in range(n_bits):
            while len(groups[g]) >= sizes[g]:
                g = (g + 1) % len(groups)
            groups[g].append(bit)
            g = (g + 1) % len(groups)
        return groups

    if stats is None:
        raise ValueError("correlation strategy requires stats")
    if stats.n_lines != n_bits:
        raise ValueError("statistics do not match the bus width")
    weight = np.abs(stats.t_c)
    # Attachments weaker than a few percent of the strongest pair are
    # statistical noise; grabbing them would eat into *other* groups'
    # clusters, so they are distributed only after every cluster is grown.
    threshold = 0.05 * float(weight.max()) if weight.max() > 0.0 else 0.0

    unassigned = set(range(n_bits))
    groups = []
    for size in group_sizes:
        remaining = sorted(unassigned)
        seed = max(remaining, key=lambda b: weight[b, remaining].sum())
        group = [seed]
        unassigned.remove(seed)
        while len(group) < size and unassigned:
            remaining = sorted(unassigned)
            best = max(remaining, key=lambda b: weight[b, group].sum())
            if weight[best, group].sum() <= threshold:
                break  # cluster exhausted; leave the rest for later groups
            group.append(best)
            unassigned.remove(best)
        groups.append(group)
    # Fill remaining capacity with the leftover (uncorrelated) bits.
    for group, size in zip(groups, group_sizes):
        while len(group) < size:
            group.append(min(unassigned))
            unassigned.remove(group[-1])
    return [sorted(g) for g in groups]


@dataclass(frozen=True)
class PartitionedReport:
    """Aggregate result of a partitioned optimization."""

    groups: Tuple[Tuple[int, ...], ...]
    reports: Tuple[AssignmentReport, ...]

    @property
    def total_power(self) -> float:
        return sum(r.power for r in self.reports)

    @property
    def total_random_mean_power(self) -> float:
        return sum(r.random_mean_power for r in self.reports)

    @property
    def reduction_vs_random(self) -> float:
        return 1.0 - self.total_power / self.total_random_mean_power

    def bit_to_array_line(self, bit: int) -> Tuple[int, int]:
        """Which (array index, line) a bus bit ends up on."""
        for array_index, group in enumerate(self.groups):
            if bit in group:
                local = group.index(bit)
                line = self.reports[array_index].assignment.line_of_bit[local]
                return array_index, line
        raise ValueError(f"bit {bit} not in any group")


def optimize_partitioned(
    bits: np.ndarray,
    geometries: Sequence[TSVArrayGeometry],
    strategy: str = "correlation",
    method: str = "optimal",
    cap_method: str = "compact3d",
    rng: Optional[np.random.Generator] = None,
    **optimize_kwargs,
) -> PartitionedReport:
    """Partition a wide bit stream over several arrays and optimize each.

    ``bits`` has one column per bus bit; ``geometries`` define the bundles
    (their sizes must sum to the bus width). Extra keyword arguments are
    forwarded to :func:`~repro.core.pipeline.optimize_assignment`.
    """
    bits = np.asarray(bits)
    n_bits = bits.shape[1]
    sizes = [g.n_tsvs for g in geometries]
    stats = BitStatistics.from_stream(bits)
    groups = partition_bits(n_bits, sizes, strategy=strategy, stats=stats)
    if rng is None:
        rng = np.random.default_rng(2018)

    reports = []
    for group, geometry in zip(groups, geometries):
        report = optimize_assignment(
            bits[:, group],
            geometry,
            method=method,
            cap_method=cap_method,
            rng=rng,
            **optimize_kwargs,
        )
        reports.append(report)
    return PartitionedReport(
        groups=tuple(tuple(g) for g in groups),
        reports=tuple(reports),
    )
