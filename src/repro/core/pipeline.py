"""High-level API: from a data stream and an array to a power report.

This is the entry point a user of the library calls:

>>> from repro.core import optimize_assignment
>>> from repro.tsv import TSVArrayGeometry
>>> geom = TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)
>>> report = optimize_assignment(bits, geom, method="optimal")   # doctest: +SKIP
>>> report.reduction_vs_random                                   # doctest: +SKIP
0.21

It wires together statistics estimation, capacitance extraction (with the
Eq. 6/7 linear probability model so inversions see the MOS effect), the
power model and the chosen search or systematic mapping, and reports the
reduction against the paper's random-assignment baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.optimize import (
    exhaustive_search,
    greedy_descent,
    simulated_annealing,
    _constrained_identity,
)
from repro.core.power import PowerModel
from repro.core.systematic import (
    sawtooth_assignment,
    spiral_assignment_for_stats,
)
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry

#: Methods accepted by :func:`optimize_assignment`.
METHODS = ("optimal", "exhaustive", "greedy", "spiral", "sawtooth", "identity")


@dataclass(frozen=True)
class AssignmentReport:
    """Result of an assignment optimization or evaluation.

    Attributes
    ----------
    assignment:
        The chosen bit-to-TSV assignment.
    power:
        Normalized power ``P_n`` [F] of that assignment.
    random_mean_power / random_worst_power:
        Mean and maximum normalized power over sampled random assignments
        (no inversions) — the paper's comparison baselines.
    method:
        Which strategy produced the assignment.
    """

    assignment: SignedPermutation
    power: float
    random_mean_power: float
    random_worst_power: float
    method: str

    @property
    def reduction_vs_random(self) -> float:
        """``P_red = 1 - P / P_random-mean`` — the paper's reported metric."""
        return 1.0 - self.power / self.random_mean_power

    @property
    def reduction_vs_worst(self) -> float:
        """Reduction against the worst sampled random assignment (Fig. 2)."""
        return 1.0 - self.power / self.random_worst_power


def build_power_model(
    source: Union[np.ndarray, BitStatistics],
    geometry: TSVArrayGeometry,
    cap_method: str = "fdm",
    mos_aware: bool = True,
    extractor: Optional[CapacitanceExtractor] = None,
) -> PowerModel:
    """Assemble the :class:`PowerModel` for a stream on an array.

    ``source`` is either a ``(samples, n)`` bit stream or precomputed
    statistics. With ``mos_aware`` (default) the Eq. 6/7 linear capacitance
    model is fitted so that assignments with inversions see the MOS effect;
    otherwise a single balanced-probability matrix is used.
    """
    if isinstance(source, BitStatistics):
        stats = source
    else:
        stats = BitStatistics.from_stream(source)
    if stats.n_lines != geometry.n_tsvs:
        raise ValueError(
            f"stream has {stats.n_lines} lines but the array has "
            f"{geometry.n_tsvs} TSVs"
        )
    if extractor is None:
        extractor = CapacitanceExtractor(geometry, method=cap_method)
    if mos_aware:
        capacitance: Union[np.ndarray, LinearCapacitanceModel] = (
            LinearCapacitanceModel.fit(extractor)
        )
    else:
        capacitance = extractor.extract()
    return PowerModel(stats, capacitance)


def random_baseline_power(
    model: PowerModel,
    n_samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    constraints: AssignmentConstraints = AssignmentConstraints(),
) -> Tuple[float, float]:
    """Mean and worst normalized power over random assignments.

    Random assignments never invert (a designer wiring bits arbitrarily
    uses plain buffers) but do honour pinned lines.
    """
    if rng is None:
        rng = np.random.default_rng(2018)
    n = model.n_lines
    constraints.validate_for(n)
    free = list(constraints.free_bits(n))
    base = _constrained_identity(n, constraints)
    pinned_lines = {base.line_of_bit[b] for b in constraints.pinned}
    free_lines = [ln for ln in range(n) if ln not in pinned_lines]

    powers = np.empty(n_samples)
    for k in range(n_samples):
        shuffled = rng.permutation(free_lines)
        line_of_bit = list(base.line_of_bit)
        for bit, line in zip(free, shuffled):
            line_of_bit[bit] = int(line)
        assignment = SignedPermutation.from_sequence(line_of_bit)
        powers[k] = model.power(assignment)
    return float(powers.mean()), float(powers.max())


def optimize_assignment(
    source: Union[np.ndarray, BitStatistics],
    geometry: TSVArrayGeometry,
    method: str = "optimal",
    cap_method: str = "fdm",
    mos_aware: bool = True,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    baseline_samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    extractor: Optional[CapacitanceExtractor] = None,
) -> AssignmentReport:
    """Find (or construct) an assignment and report its power reduction.

    ``method`` is one of:

    * ``"optimal"`` — simulated annealing on Eq. 10 (the paper's approach);
    * ``"exhaustive"`` — exact enumeration (small arrays only);
    * ``"greedy"`` — deterministic hill climbing;
    * ``"spiral"`` / ``"sawtooth"`` — the systematic mappings of Sec. 4;
    * ``"identity"`` — evaluate the unoptimized bit order.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    if rng is None:
        rng = np.random.default_rng(2018)
    model = build_power_model(
        source, geometry, cap_method=cap_method, mos_aware=mos_aware,
        extractor=extractor,
    )

    if method == "optimal":
        result = simulated_annealing(
            model.power,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
            rng=rng,
        )
        assignment = result.assignment
    elif method == "exhaustive":
        result = exhaustive_search(
            model.power,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
        )
        assignment = result.assignment
    elif method == "greedy":
        start = _constrained_identity(model.n_lines, constraints)
        result = greedy_descent(
            model.power,
            start,
            with_inversions=with_inversions,
            constraints=constraints,
        )
        assignment = result.assignment
    elif method == "spiral":
        assignment = spiral_assignment_for_stats(geometry, model.stats)
    elif method == "sawtooth":
        assignment = sawtooth_assignment(geometry)
    else:  # identity
        assignment = SignedPermutation.identity(model.n_lines)

    mean_power, worst_power = random_baseline_power(
        model, n_samples=baseline_samples, rng=rng, constraints=constraints
    )
    return AssignmentReport(
        assignment=assignment,
        power=model.power(assignment),
        random_mean_power=mean_power,
        random_worst_power=worst_power,
        method=method,
    )


def evaluate_assignment(
    assignment: SignedPermutation,
    source: Union[np.ndarray, BitStatistics],
    geometry: TSVArrayGeometry,
    cap_method: str = "fdm",
    mos_aware: bool = True,
    baseline_samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    extractor: Optional[CapacitanceExtractor] = None,
) -> AssignmentReport:
    """Report the power of a user-supplied assignment (no search)."""
    model = build_power_model(
        source, geometry, cap_method=cap_method, mos_aware=mos_aware,
        extractor=extractor,
    )
    mean_power, worst_power = random_baseline_power(
        model, n_samples=baseline_samples, rng=rng
    )
    return AssignmentReport(
        assignment=assignment,
        power=model.power(assignment),
        random_mean_power=mean_power,
        random_worst_power=worst_power,
        method="user",
    )
