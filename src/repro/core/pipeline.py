"""High-level API: from a data stream and an array to a power report.

This is the entry point a user of the library calls:

>>> from repro.core import optimize_assignment
>>> from repro.tsv import TSVArrayGeometry
>>> geom = TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)
>>> report = optimize_assignment(bits, geom, method="optimal")   # doctest: +SKIP
>>> report.reduction_vs_random                                   # doctest: +SKIP
0.21

It wires together statistics estimation, capacitance extraction (with the
Eq. 6/7 linear probability model so inversions see the MOS effect), the
power model and the chosen search or systematic mapping, and reports the
reduction against the paper's random-assignment baseline.

Reproducibility contract: the caller's ``rng`` (or the default seed) is
split with ``Generator.spawn`` into one stream for the search and an
*independent* stream for the random baseline, so ``random_mean_power`` and
``random_worst_power`` depend only on the seed and the baseline sample
count — never on which ``method`` ran, whether inversions were enabled, or
how many draws the search consumed. Searches and baselines run on the
compiled delta-cost/batched kernels of :mod:`repro.core.fastpower`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.fastpower import CompiledPowerModel
from repro.core.optimize import (
    exhaustive_search,
    greedy_descent,
    simulated_annealing,
    _constrained_identity,
)
from repro.core.power import PowerModel
from repro.core.systematic import (
    sawtooth_assignment,
    spiral_assignment_for_stats,
)
from repro.rng import ensure_rng
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry

#: Methods accepted by :func:`optimize_assignment`.
METHODS = ("optimal", "exhaustive", "greedy", "spiral", "sawtooth", "identity")


@dataclass(frozen=True)
class AssignmentReport:
    """Result of an assignment optimization or evaluation.

    Attributes
    ----------
    assignment:
        The chosen bit-to-TSV assignment.
    power:
        Normalized power ``P_n`` [F] of that assignment.
    random_mean_power / random_worst_power:
        Mean and maximum normalized power over sampled random assignments
        (no inversions) — the paper's comparison baselines.
    method:
        Which strategy produced the assignment.
    """

    assignment: SignedPermutation
    power: float
    random_mean_power: float
    random_worst_power: float
    method: str
    #: False when the underlying search returned its best-so-far early
    #: (deadline expired or interrupted) instead of running to completion.
    completed: bool = True

    @property
    def reduction_vs_random(self) -> float:
        """``P_red = 1 - P / P_random-mean`` — the paper's reported metric.

        A zero-switching stream has a zero baseline; the reduction is then
        0.0 by definition (there is nothing to reduce), not a division
        error.
        """
        if self.random_mean_power == 0.0:
            return 0.0
        return 1.0 - self.power / self.random_mean_power

    @property
    def reduction_vs_worst(self) -> float:
        """Reduction against the worst sampled random assignment (Fig. 2)."""
        if self.random_worst_power == 0.0:
            return 0.0
        return 1.0 - self.power / self.random_worst_power


def build_power_model(
    source: Union[np.ndarray, BitStatistics],
    geometry: TSVArrayGeometry,
    cap_method: str = "fdm",
    mos_aware: bool = True,
    extractor: Optional[CapacitanceExtractor] = None,
) -> PowerModel:
    """Assemble the :class:`PowerModel` for a stream on an array.

    ``source`` is either a ``(samples, n)`` bit stream or precomputed
    statistics. With ``mos_aware`` (default) the Eq. 6/7 linear capacitance
    model is fitted so that assignments with inversions see the MOS effect;
    otherwise a single balanced-probability matrix is used.
    """
    if isinstance(source, BitStatistics):
        stats = source
    else:
        stats = BitStatistics.from_stream(source)
    if stats.n_lines != geometry.n_tsvs:
        raise ValueError(
            f"stream has {stats.n_lines} lines but the array has "
            f"{geometry.n_tsvs} TSVs"
        )
    if extractor is None:
        extractor = CapacitanceExtractor(geometry, method=cap_method)
    if mos_aware:
        capacitance: Union[np.ndarray, LinearCapacitanceModel] = (
            LinearCapacitanceModel.fit(extractor)
        )
    else:
        capacitance = extractor.extract()
    return PowerModel(stats, capacitance)


def random_baseline_power(
    model: Union[PowerModel, CompiledPowerModel],
    n_samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    constraints: AssignmentConstraints = AssignmentConstraints(),
) -> Tuple[float, float]:
    """Mean and worst normalized power over random assignments.

    Random assignments never invert (a designer wiring bits arbitrarily
    uses plain buffers) but do honour pinned lines. The samples are
    evaluated in one batched pass over the compiled kernels.
    """
    rng = ensure_rng(rng)
    compiled = (
        model if isinstance(model, CompiledPowerModel)
        else CompiledPowerModel.compile(model)
    )
    n = compiled.n_lines
    constraints.validate_for(n)
    free = list(constraints.free_bits(n))
    base = _constrained_identity(n, constraints)
    pinned_lines = {base.line_of_bit[b] for b in constraints.pinned}
    free_lines = [ln for ln in range(n) if ln not in pinned_lines]

    samples: List[SignedPermutation] = []
    for _ in range(n_samples):
        shuffled = rng.permutation(free_lines)
        line_of_bit = list(base.line_of_bit)
        for bit, line in zip(free, shuffled):
            line_of_bit[bit] = int(line)
        samples.append(SignedPermutation.from_sequence(line_of_bit))
    powers = compiled.powers(samples)
    return float(powers.mean()), float(powers.max())


def optimize_assignment(
    source: Union[np.ndarray, BitStatistics],
    geometry: TSVArrayGeometry,
    method: str = "optimal",
    cap_method: str = "fdm",
    mos_aware: bool = True,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    baseline_samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    extractor: Optional[CapacitanceExtractor] = None,
    n_restarts: int = 1,
    n_jobs: int = 1,
    deadline_s: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
) -> AssignmentReport:
    """Find (or construct) an assignment and report its power reduction.

    ``method`` is one of:

    * ``"optimal"`` — simulated annealing on Eq. 10 (the paper's approach;
      ``n_restarts``/``n_jobs`` run parallel independent chains);
    * ``"exhaustive"`` — exact enumeration (small arrays only);
    * ``"greedy"`` — deterministic hill climbing;
    * ``"spiral"`` / ``"sawtooth"`` — the systematic mappings of Sec. 4;
    * ``"identity"`` — evaluate the unoptimized bit order.

    ``deadline_s`` / ``checkpoint_dir`` / ``resume_from`` are forwarded to
    :func:`repro.core.optimize.simulated_annealing` (the ``"optimal"``
    method); a search that stopped early is reported with
    ``completed=False``.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    rng = ensure_rng(rng)
    search_rng, baseline_rng = rng.spawn(2)
    model = build_power_model(
        source, geometry, cap_method=cap_method, mos_aware=mos_aware,
        extractor=extractor,
    )
    compiled = CompiledPowerModel.compile(model)

    completed = True
    if method == "optimal":
        result = simulated_annealing(
            compiled,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
            rng=search_rng,
            n_restarts=n_restarts,
            n_jobs=n_jobs,
            deadline_s=deadline_s,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
        )
        assignment = result.assignment
        completed = result.completed
    elif method == "exhaustive":
        result = exhaustive_search(
            compiled,
            model.n_lines,
            with_inversions=with_inversions,
            constraints=constraints,
        )
        assignment = result.assignment
    elif method == "greedy":
        start = _constrained_identity(model.n_lines, constraints)
        result = greedy_descent(
            compiled,
            start,
            with_inversions=with_inversions,
            constraints=constraints,
        )
        assignment = result.assignment
    elif method == "spiral":
        assignment = spiral_assignment_for_stats(geometry, model.stats)
    elif method == "sawtooth":
        assignment = sawtooth_assignment(geometry)
    else:  # identity
        assignment = SignedPermutation.identity(model.n_lines)

    mean_power, worst_power = random_baseline_power(
        compiled, n_samples=baseline_samples, rng=baseline_rng,
        constraints=constraints,
    )
    return AssignmentReport(
        assignment=assignment,
        power=compiled.power(assignment),
        random_mean_power=mean_power,
        random_worst_power=worst_power,
        method=method,
        completed=completed,
    )


def evaluate_assignment(
    assignment: SignedPermutation,
    source: Union[np.ndarray, BitStatistics],
    geometry: TSVArrayGeometry,
    cap_method: str = "fdm",
    mos_aware: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    baseline_samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    extractor: Optional[CapacitanceExtractor] = None,
) -> AssignmentReport:
    """Report the power of a user-supplied assignment (no search).

    ``constraints`` are validated against the supplied assignment and
    forwarded to the random baseline, so a pinned/non-inverting design is
    compared against a baseline drawn from the same restricted space. The
    RNG is split exactly as in :func:`optimize_assignment`, so both report
    identical baselines for the same seed.
    """
    model = build_power_model(
        source, geometry, cap_method=cap_method, mos_aware=mos_aware,
        extractor=extractor,
    )
    constraints.validate_for(model.n_lines)
    if not constraints.allows(assignment):
        raise ValueError("supplied assignment violates the constraints")
    compiled = CompiledPowerModel.compile(model)
    rng = ensure_rng(rng)
    _search_rng, baseline_rng = rng.spawn(2)
    mean_power, worst_power = random_baseline_power(
        compiled, n_samples=baseline_samples, rng=baseline_rng,
        constraints=constraints,
    )
    return AssignmentReport(
        assignment=assignment,
        power=compiled.power(assignment),
        random_mean_power=mean_power,
        random_worst_power=worst_power,
        method="user",
    )
