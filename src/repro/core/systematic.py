"""Systematic bit-to-TSV assignments for DSP signals (paper Sec. 4, Fig. 1).

When no sample stream is available at design time, the paper proposes two
closed-form assignments built from the known bit-level structure of DSP
words:

*Spiral* — for temporally correlated, equally distributed patterns. With no
spatial bit correlation the power reduces to ``sum_i E{db_i^2} C_T,i``
(Eq. 12), which is minimized by pairing high-activity bits with
low-total-capacitance TSVs (rearrangement inequality). Corners have the
lowest total capacitance, then edges, then the middle; MSBs of correlated
patterns switch least. Walking the array in an outside-in spiral and placing
the bits from the LSB (most active) to the MSB (least active) realizes that
pairing — Fig. 1.a.

*Sawtooth* — for mean-free normally distributed, temporally uncorrelated
patterns. All self-switching terms are fixed at 1/2 (Eq. 13); power is
minimized by putting strongly correlated bit pairs on strongly coupled TSV
pairs. The paper's recursive rule: put the MSB on a corner, the next bit on
its strongest-coupled neighbour, and each following bit on the TSV with the
biggest *accumulated* coupling to all already-placed TSVs. On the standard
arrays this walks the first two rows in a sawtooth and continues row by row
— Fig. 1.b. :func:`greedy_coupling_assignment` implements the rule against
an actual capacitance matrix; :func:`sawtooth_assignment` is the closed
form.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.assignment import SignedPermutation
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry
from repro.tsv.matrices import total_capacitance


def spiral_order(geometry: TSVArrayGeometry) -> List[int]:
    """TSV indices along an outside-in clockwise spiral from TSV (0, 0).

    The walk covers the perimeter ring first (corners and edges — the
    low-capacitance positions), then recurses inward, ending at the array
    centre (the highest-capacitance position).
    """
    rows, cols = geometry.rows, geometry.cols
    top, bottom, left, right = 0, rows - 1, 0, cols - 1
    order: List[int] = []
    while top <= bottom and left <= right:
        for c in range(left, right + 1):
            order.append(geometry.index(top, c))
        for r in range(top + 1, bottom + 1):
            order.append(geometry.index(r, right))
        if top < bottom:
            for c in range(right - 1, left - 1, -1):
                order.append(geometry.index(bottom, c))
        if left < right:
            for r in range(bottom - 1, top, -1):
                order.append(geometry.index(r, left))
        top, bottom, left, right = top + 1, bottom - 1, left + 1, right - 1
    return order


def spiral_class_order(geometry: TSVArrayGeometry) -> List[int]:
    """Spiral positions reordered by capacitance class within each ring.

    The paper's construction rule is class-based: the most active bits go to
    the array *corners* (lowest total capacitance), the next to the *edges*,
    the rest to the middle. A literal perimeter walk interleaves corners and
    edges; this order visits, ring by ring from the outside in, first the
    ring's corner positions (in walk order) and then its edge positions —
    which sorts the standard arrays by total capacitance while keeping the
    Fig. 1.a spiral structure.
    """
    rows, cols = geometry.rows, geometry.cols
    walk = spiral_order(geometry)

    def ring(index: int) -> int:
        r, c = geometry.row_col(index)
        return min(r, c, rows - 1 - r, cols - 1 - c)

    def is_ring_corner(index: int) -> bool:
        r, c = geometry.row_col(index)
        k = ring(index)
        return r in (k, rows - 1 - k) and c in (k, cols - 1 - k)

    walk_position = {tsv: pos for pos, tsv in enumerate(walk)}
    return sorted(
        walk,
        key=lambda tsv: (ring(tsv), not is_ring_corner(tsv), walk_position[tsv]),
    )


def spiral_assignment(
    geometry: TSVArrayGeometry,
    activity_order: Optional[Sequence[int]] = None,
    order: str = "class",
) -> SignedPermutation:
    """The Spiral mapping of Fig. 1.a (no inversions).

    ``activity_order`` lists the bits from most to least switching activity;
    it defaults to LSB-to-MSB order (bit 0 first), the activity ordering of
    temporally correlated DSP words. Bit ``activity_order[k]`` lands on the
    ``k``-th position of the outside-in spiral, so the most active bits take
    the low-capacitance perimeter.

    ``order`` selects the position sequence: ``"class"`` (default) uses
    :func:`spiral_class_order` — corners before edges within each ring, the
    paper's construction rule — while ``"walk"`` follows the literal
    perimeter walk of :func:`spiral_order`.
    """
    n = geometry.n_tsvs
    if activity_order is None:
        activity_order = list(range(n))
    if sorted(activity_order) != list(range(n)):
        raise ValueError("activity_order must be a permutation of the bits")
    if order == "class":
        walk = spiral_class_order(geometry)
    elif order == "walk":
        walk = spiral_order(geometry)
    else:
        raise ValueError(f"order must be 'class' or 'walk', got {order!r}")
    line_of_bit = [0] * n
    for position, bit in enumerate(activity_order):
        line_of_bit[bit] = walk[position]
    return SignedPermutation.from_sequence(line_of_bit)


def spiral_assignment_for_stats(
    geometry: TSVArrayGeometry,
    stats: BitStatistics,
    cap_matrix: Optional[np.ndarray] = None,
) -> SignedPermutation:
    """Spiral mapping with the activity order measured from statistics.

    Bits are ranked by their empirical self-switching probability (most
    active first), which generalizes the LSB-first default to streams whose
    activity is not monotone in bit position — e.g. streams with stable
    lines, which the paper treats "as MSBs" (least active, innermost).

    When ``cap_matrix`` is given, the TSV order is the exact
    total-capacitance sorting it implies (the capacitance matrix is
    design-time knowledge, so this is still a "systematic" mapping — on the
    standard arrays the sorting traces out the Fig. 1.a spiral); otherwise
    the structural :func:`spiral_class_order` is used.
    """
    if stats.n_lines != geometry.n_tsvs:
        raise ValueError("statistics do not match array size")
    order = list(np.argsort(-stats.self_switching, kind="stable"))
    if cap_matrix is None:
        return spiral_assignment(geometry, activity_order=order)
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    if cap_matrix.shape != (geometry.n_tsvs, geometry.n_tsvs):
        raise ValueError("capacitance matrix does not match the array")
    walk = list(np.argsort(total_capacitance(cap_matrix), kind="stable"))
    line_of_bit = [0] * geometry.n_tsvs
    for position, bit in enumerate(order):
        line_of_bit[bit] = int(walk[position])
    return SignedPermutation.from_sequence(line_of_bit)


def sawtooth_order(geometry: TSVArrayGeometry) -> List[int]:
    """TSV indices in the Fig. 1.b order: two-row sawtooth, then row-major.

    The first two rows are visited column by column alternating between row
    0 and row 1 — the "sawtooth" — and the remaining rows in plain row-major
    order.
    """
    rows, cols = geometry.rows, geometry.cols
    order: List[int] = []
    if rows == 1:
        return [geometry.index(0, c) for c in range(cols)]
    for c in range(cols):
        order.append(geometry.index(0, c))
        order.append(geometry.index(1, c))
    for r in range(2, rows):
        for c in range(cols):
            order.append(geometry.index(r, c))
    return order


def sawtooth_assignment(
    geometry: TSVArrayGeometry,
    significance_order: Optional[Sequence[int]] = None,
) -> SignedPermutation:
    """The Sawtooth (ST) mapping of Fig. 1.b (no inversions).

    ``significance_order`` lists the bits from most to least mutually
    correlated; it defaults to MSB-to-LSB order (bit ``n-1`` first), the
    correlation ordering of mean-free normally distributed words. Highly
    correlated bits land on the strongly coupled corner/edge pairs at the
    start of the sawtooth walk.
    """
    n = geometry.n_tsvs
    if significance_order is None:
        significance_order = list(range(n - 1, -1, -1))
    if sorted(significance_order) != list(range(n)):
        raise ValueError("significance_order must be a permutation of the bits")
    walk = sawtooth_order(geometry)
    line_of_bit = [0] * n
    for position, bit in enumerate(significance_order):
        line_of_bit[bit] = walk[position]
    return SignedPermutation.from_sequence(line_of_bit)


def greedy_coupling_assignment(
    geometry: TSVArrayGeometry,
    cap_matrix: np.ndarray,
    significance_order: Optional[Sequence[int]] = None,
) -> SignedPermutation:
    """The paper's recursive placement rule behind the Sawtooth mapping.

    Place the most significant bit on the corner with the lowest total
    capacitance; then, repeatedly, place the next bit on the free TSV with
    the largest accumulated coupling capacitance to all TSVs already used.
    Ties fall to the lower TSV index. On the standard arrays this reproduces
    the closed-form sawtooth (verified in the test suite).
    """
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    n = geometry.n_tsvs
    if cap_matrix.shape != (n, n):
        raise ValueError("capacitance matrix does not match the array")
    if significance_order is None:
        significance_order = list(range(n - 1, -1, -1))
    if sorted(significance_order) != list(range(n)):
        raise ValueError("significance_order must be a permutation of the bits")

    corners = [
        i
        for i in range(n)
        if geometry.position_class(i).value == "corner"
    ]
    totals = total_capacitance(cap_matrix)
    start = min(corners, key=lambda i: (totals[i], i))

    placed: List[int] = [start]
    free = set(range(n)) - {start}
    coupling = cap_matrix.copy()
    np.fill_diagonal(coupling, 0.0)
    while free:
        accumulated = {t: coupling[t, placed].sum() for t in free}
        best = max(sorted(free), key=lambda t: (accumulated[t], -t))
        placed.append(best)
        free.remove(best)

    line_of_bit = [0] * n
    for position, bit in enumerate(significance_order):
        line_of_bit[bit] = placed[position]
    return SignedPermutation.from_sequence(line_of_bit)


def activity_sorted_assignment(
    geometry: TSVArrayGeometry,
    cap_matrix: np.ndarray,
    stats: BitStatistics,
) -> SignedPermutation:
    """Exact Eq. 12 optimum for spatially uncorrelated, balanced streams.

    Sorts the lines by total capacitance and the bits by self switching and
    pairs them in opposite order (rearrangement inequality). For streams
    with ``T_c = 0`` and all probabilities 1/2 this is provably optimal and
    serves as an oracle for the search algorithms.
    """
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    n = geometry.n_tsvs
    if stats.n_lines != n or cap_matrix.shape != (n, n):
        raise ValueError("sizes do not match the array")
    lines_by_cap = np.argsort(total_capacitance(cap_matrix), kind="stable")
    bits_by_activity = np.argsort(-stats.self_switching, kind="stable")
    line_of_bit = [0] * n
    for line, bit in zip(lines_by_cap, bits_by_activity):
        line_of_bit[bit] = int(line)
    return SignedPermutation.from_sequence(line_of_bit)
