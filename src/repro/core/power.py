"""The TSV interconnect power model ``P_n = <T, C>`` and its transforms.

Everything here works on the *normalized* mean dynamic power of Eq. 1/2,

``P_n = 2 P / (Vdd^2 f) = <T, C>``  [farad],

with ``T = T_s 1 - T_c`` the switching-cost matrix built from the bit
statistics and ``C`` the SPICE-form capacitance matrix (ground terms on the
diagonal, couplings off it). A bit-to-TSV assignment acts on ``T`` by the
congruence of Eq. 4 and — through the MOS effect — on ``C`` via the linear
capacitance model of Eq. 9.

:class:`PowerModel` packages stream statistics together with either a fixed
capacitance matrix (assignment-independent ``C``, e.g. balanced data) or a
:class:`~repro.tsv.capmodel.LinearCapacitanceModel` (probability-aware
``C``) and evaluates any assignment's power, which is the cost function of
the Eq. 10 search.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.analysis.contracts import (
    check_capacitance_matrix,
    check_enabled,
    check_signed_permutation,
    check_switching_matrix,
)
from repro.core.assignment import SignedPermutation
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel


def normalized_power(stats: BitStatistics, cap_matrix: np.ndarray) -> float:
    """``P_n = <T, C>`` (Eq. 2) for line-domain statistics and capacitances.

    Expanded: ``sum_i E{db_i^2} C_T,i - sum_{i != j} E{db_i db_j} C_ij``
    with ``C_T,i`` the total capacitance on line ``i``. This is exactly the
    Frobenius product of ``T = T_s 1 - T_c`` with ``C``.

    With ``REPRO_CONTRACTS=1`` both inputs are validated: ``C`` must be a
    SPICE-form capacitance matrix and the statistics mutually consistent.
    """
    check_enabled(check_switching_matrix, stats)
    check_enabled(check_capacitance_matrix, cap_matrix)
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    n = stats.n_lines
    if cap_matrix.shape != (n, n):
        raise ValueError(
            f"capacitance matrix shape {cap_matrix.shape} does not match "
            f"{n} lines"
        )
    row_totals = cap_matrix.sum(axis=1)
    self_term = float(stats.self_switching @ row_totals)
    coupling_term = float(np.sum(stats.t_c * cap_matrix))
    return self_term - coupling_term


class PowerModel:
    """Power of any assignment of a given data stream on a given TSV array.

    Parameters
    ----------
    stats:
        Bit statistics of the logical data stream (bit domain).
    capacitance:
        Either a fixed SPICE-form matrix (ignores the MOS probability
        dependence — valid when all bit probabilities are 1/2) or a fitted
        :class:`LinearCapacitanceModel` for the full Eq. 9 treatment.
    """

    def __init__(
        self,
        stats: BitStatistics,
        capacitance: Union[np.ndarray, LinearCapacitanceModel],
    ) -> None:
        self.stats = stats
        if isinstance(capacitance, LinearCapacitanceModel):
            if capacitance.n_lines != stats.n_lines:
                raise ValueError("capacitance model size mismatch")
            self.cap_model: Optional[LinearCapacitanceModel] = capacitance
            self.cap_matrix: Optional[np.ndarray] = None
        else:
            capacitance = np.asarray(capacitance, dtype=float)
            if capacitance.shape != (stats.n_lines, stats.n_lines):
                raise ValueError("capacitance matrix size mismatch")
            check_enabled(check_capacitance_matrix, capacitance)
            self.cap_model = None
            self.cap_matrix = capacitance

    @property
    def n_lines(self) -> int:
        return self.stats.n_lines

    def line_capacitance(self, line_stats: BitStatistics) -> np.ndarray:
        """Capacitance matrix seen by line-domain statistics.

        With a linear capacitance model the per-line 1-probabilities set the
        matrix (Eq. 9); with a fixed matrix they are ignored.
        """
        if self.cap_model is not None:
            return self.cap_model.matrix(line_stats.probabilities)
        assert self.cap_matrix is not None
        return self.cap_matrix

    def power(self, assignment: Optional[SignedPermutation] = None) -> float:
        """Normalized power ``P_n`` [F] of the given assignment.

        ``None`` evaluates the identity assignment (bit *i* on line *i*).
        """
        if assignment is None:
            assignment = SignedPermutation.identity(self.n_lines)
        check_enabled(check_signed_permutation, assignment)
        line_stats = assignment.apply_to_statistics(self.stats)
        cap = self.line_capacitance(line_stats)
        return normalized_power(line_stats, cap)

    def power_watts(
        self,
        assignment: Optional[SignedPermutation] = None,
        vdd: float = 1.0,
        frequency: float = 3.0e9,
    ) -> float:
        """Denormalized mean power ``P = P_n Vdd^2 f / 2`` [W]."""
        return self.power(assignment) * vdd**2 * frequency / 2.0


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). Normalized power ``P_n = <T, C>`` carries
#: farads; ``power_watts`` denormalizes to watts via ``C V^2 f``.
REPRO_SIGNATURES = {
    "normalized_power": {
        "stats": "BitStatistics",
        "cap_matrix": "(N, N) farad spice",
        "return": "scalar farad",
    },
    "PowerModel": {
        "stats": "BitStatistics",
        "capacitance": "(N, N) farad spice | LinearCapacitanceModel",
    },
    "PowerModel.line_capacitance": {
        "line_stats": "BitStatistics",
        "return": "(N, N) farad spice",
    },
    "PowerModel.power": {
        "assignment": "SignedPermutation",
        "return": "scalar farad",
    },
    "PowerModel.power_watts": {
        "assignment": "SignedPermutation",
        "vdd": "scalar volt",
        "frequency": "scalar hertz",
        "return": "scalar watt",
    },
    "PowerModel.stats": "BitStatistics",
    "PowerModel.cap_model": "LinearCapacitanceModel",
    "PowerModel.cap_matrix": "(N, N) farad spice",
    "PowerModel.n_lines": "scalar dimensionless",
    # Eq. 3 collapses T_s/T_c against C in one float contraction whose
    # result depends on summation order — it must never feed an
    # exact-int accumulator, and model evaluations must be reproducible.
    "@order_sensitive": ["normalized_power"],
    "@deterministic": ["PowerModel.power"],
}
