"""Exact assignment solvers beyond plain enumeration.

The Eq. 10 search over signed permutations is a (signed) quadratic
assignment problem. Full enumeration dies around 8 lines; this module
pushes the *exact* frontier further with two tools:

* :func:`branch_and_bound` — exact minimum over pure permutations (no
  inversions, fixed capacitance matrix) with Gilmore-Lawler-style lower
  bounds: at every node the remaining cost is underestimated by a linear
  assignment over per-candidate bounds (exact self-switching term, exact
  cross-coupling to already-placed bits, rearrangement-inequality bound on
  the still-open pair terms). Solves the paper's 3x3 and 4x4 cases exactly
  in far fewer evaluations than enumeration.
* :func:`optimal_inversions` — the exact best inversion pattern for a
  *fixed* bit placement, by vectorized enumeration of all ``2^k`` sign
  patterns (the sign problem alone is Ising-like, so exhaustive signs is
  the honest exact method; fine up to ~20 invertible bits).
* :func:`alternating_exact` — coordinate descent alternating the two:
  exact permutation for fixed signs, exact signs for fixed permutation.
  Each step is optimal, the combination is a strong (not provably global)
  optimum; the test suite checks it against full enumeration where that is
  feasible.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.assignment import SignedPermutation
from repro.core.power import normalized_power
from repro.stats.switching import BitStatistics
from repro.tsv.matrices import total_capacitance


class _Problem:
    """Preprocessed cost data for the permutation search."""

    def __init__(self, stats: BitStatistics, cap_matrix: np.ndarray,
                 inverted: Sequence[bool]) -> None:
        cap_matrix = np.asarray(cap_matrix, dtype=float)
        n = stats.n_lines
        if cap_matrix.shape != (n, n):
            raise ValueError("capacitance matrix size mismatch")
        if len(inverted) != n:
            raise ValueError("inversion flags size mismatch")
        self.n = n
        self.self_switching = stats.self_switching
        signs = np.where(np.asarray(inverted, dtype=bool), -1.0, 1.0)
        self.coupling_stats = stats.t_c * np.outer(signs, signs)
        self.cap = cap_matrix
        self.cap_totals = total_capacitance(cap_matrix)
        self.cap_coupling = cap_matrix.copy()
        np.fill_diagonal(self.cap_coupling, 0.0)
        self.inverted = tuple(bool(x) for x in inverted)

    def full_cost(self, bit_of_line: Sequence[int]) -> float:
        order = np.asarray(bit_of_line)
        tc = self.coupling_stats[np.ix_(order, order)]
        return float(
            self.self_switching[order] @ self.cap_totals
            - np.sum(tc * self.cap_coupling)
        )


def _lower_bound(
    problem: _Problem,
    placed_bits: Tuple[int, ...],
    free_bits: Tuple[int, ...],
) -> float:
    """Gilmore-Lawler-style lower bound for completing a partial placement.

    Lines ``0 .. len(placed_bits)-1`` carry ``placed_bits``; the remaining
    lines take ``free_bits`` in some order. The bound is the optimum of a
    linear assignment whose cost D[b, l] stacks:

    * the exact self term ``s_b * C_T,l``;
    * the exact coupling to the already-placed bits;
    * half the rearrangement-inequality minimum of the open pair terms.
    """
    k = len(placed_bits)
    free_lines = list(range(k, problem.n))
    nf = len(free_bits)
    if nf == 0:
        return 0.0
    placed = np.asarray(placed_bits, dtype=int)
    free = np.asarray(free_bits, dtype=int)

    d = np.empty((nf, nf))
    # Precompute sorted open-pair statistics per free bit and line.
    # Contribution of pairing free bit b (on line l) with the other free
    # bits: -2 * sum tc_bb' * C_ll' over unordered -> ordered factor 2,
    # shared between the two endpoints -> each endpoint carries half,
    # i.e. one full -sum per endpoint.
    tc_free = problem.coupling_stats[np.ix_(free, free)]
    cap_free = problem.cap_coupling[np.ix_(free_lines, free_lines)]
    # Drop each row's self entry *before* sorting (it is 0 but not
    # necessarily an extreme value), then sort for the rearrangement bound.
    off_diag = ~np.eye(nf, dtype=bool)
    neg_tc_rows = (-tc_free)[off_diag].reshape(nf, nf - 1)
    cap_rows = cap_free[off_diag].reshape(nf, nf - 1)
    neg_tc_sorted = np.sort(neg_tc_rows, axis=1)           # ascending
    cap_sorted = np.sort(cap_rows, axis=1)[:, ::-1]        # descending

    placed_lines = np.arange(k)
    for bi, b in enumerate(free):
        cross = -2.0 * (
            problem.coupling_stats[b, placed]
            @ problem.cap_coupling[np.ix_(free_lines, placed_lines)].T
        ) if k else np.zeros(nf)
        pair_bound = neg_tc_sorted[bi] @ cap_sorted.T  # (nf,) per line
        d[bi] = (
            problem.self_switching[b] * problem.cap_totals[free_lines]
            + cross
            + pair_bound
        )
    rows, cols = linear_sum_assignment(d)
    return float(d[rows, cols].sum())


def branch_and_bound(
    stats: BitStatistics,
    cap_matrix: np.ndarray,
    inverted: Optional[Sequence[bool]] = None,
    node_limit: int = 2_000_000,
) -> Tuple[SignedPermutation, float, int]:
    """Exact minimum-power permutation (fixed inversion pattern).

    Returns ``(assignment, power, nodes_visited)``. ``inverted`` fixes the
    per-bit inversion flags (default: none). Raises ``RuntimeError`` when
    the node limit is hit (the result would not be provably optimal).
    """
    n = stats.n_lines
    if inverted is None:
        inverted = (False,) * n
    problem = _Problem(stats, cap_matrix, inverted)

    # Greedy-by-bound initial solution via the root LSA gives a good
    # incumbent cheaply.
    best_order: Optional[Tuple[int, ...]] = None
    best_cost = math.inf
    nodes = 0

    def dfs(placed: Tuple[int, ...], free: Tuple[int, ...],
            placed_cost: float) -> None:
        nonlocal best_order, best_cost, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"branch-and-bound node limit ({node_limit}) exceeded"
            )
        if not free:
            if placed_cost < best_cost:
                best_cost = placed_cost
                best_order = placed
            return
        bound = _lower_bound(problem, placed, free)
        if placed_cost + bound >= best_cost - 1e-30:
            return
        line = len(placed)
        # Explore children best-bound-first.
        children = []
        for b in free:
            extra = problem.self_switching[b] * problem.cap_totals[line]
            if placed:
                placed_arr = np.asarray(placed)
                extra -= 2.0 * float(
                    problem.coupling_stats[b, placed_arr]
                    @ problem.cap_coupling[line, : len(placed)]
                )
            children.append((placed_cost + extra, b))
        children.sort()
        for child_cost, b in children:
            dfs(placed + (b,), tuple(x for x in free if x != b), child_cost)

    dfs((), tuple(range(n)), 0.0)
    assert best_order is not None
    line_of_bit = [0] * n
    for line, bit in enumerate(best_order):
        line_of_bit[bit] = line
    assignment = SignedPermutation.from_sequence(line_of_bit, inverted)
    return assignment, best_cost, nodes


def optimal_inversions(
    stats: BitStatistics,
    cap_matrix: np.ndarray,
    line_of_bit: Sequence[int],
    invertible: Optional[Sequence[int]] = None,
    max_bits: int = 20,
) -> Tuple[SignedPermutation, float]:
    """Exact best inversion pattern for a fixed bit placement.

    Enumerates all ``2^k`` sign patterns over the ``invertible`` bits
    (default: all) with vectorized cost evaluation. The capacitance matrix
    is fixed (no MOS feedback) — combine with
    :class:`~repro.tsv.capmodel.LinearCapacitanceModel` separately if the
    probability dependence matters.
    """
    n = stats.n_lines
    if invertible is None:
        invertible = list(range(n))
    k = len(invertible)
    if k > max_bits:
        raise ValueError(f"too many invertible bits for enumeration ({k})")
    base = SignedPermutation.from_sequence(line_of_bit)
    line_stats = base.apply_to_statistics(stats)
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    cap_coupling = cap_matrix.copy()
    np.fill_diagonal(cap_coupling, 0.0)
    self_term = float(
        line_stats.self_switching @ total_capacitance(cap_matrix)
    )

    invertible_lines = [base.line_of_bit[b] for b in invertible]
    patterns = np.arange(1 << k, dtype=np.int64)
    flips = ((patterns[:, None] >> np.arange(k)) & 1).astype(np.int8)
    signs = np.ones((1 << k, n))
    signs[:, invertible_lines] = np.where(flips == 1, -1.0, 1.0)

    weighted = line_stats.t_c * cap_coupling  # (n, n)
    # cost(p) = self_term - signs_p^T W signs_p (diagonal of W is 0).
    quad = np.einsum("pi,ij,pj->p", signs, weighted, signs)
    best_pattern = int(np.argmin(self_term - quad))
    inverted = [False] * n
    for idx, bit in enumerate(invertible):
        inverted[bit] = bool((best_pattern >> idx) & 1)
    assignment = SignedPermutation.from_sequence(line_of_bit, inverted)
    cost = normalized_power(assignment.apply_to_statistics(stats), cap_matrix)
    return assignment, cost


def alternating_exact(
    stats: BitStatistics,
    cap_matrix: np.ndarray,
    max_rounds: int = 10,
    node_limit: int = 2_000_000,
) -> Tuple[SignedPermutation, float]:
    """Alternate exact permutation and exact inversion solving.

    Each half-step is globally optimal for its own subspace, so the cost is
    non-increasing and converges in a few rounds. The fixed point is *not*
    guaranteed to be the joint optimum — on random 6-line instances it lands
    within ~2 % of full signed enumeration (often exactly on it); use
    :func:`~repro.core.optimize.exhaustive_search` when a certified joint
    optimum on a small array is required.
    """
    n = stats.n_lines
    inverted: Tuple[bool, ...] = (False,) * n
    best_cost = math.inf
    best: Optional[SignedPermutation] = None
    for _ in range(max_rounds):
        perm, cost, _ = branch_and_bound(
            stats, cap_matrix, inverted=inverted, node_limit=node_limit
        )
        signed, cost = optimal_inversions(
            stats, cap_matrix, perm.line_of_bit
        )
        if cost >= best_cost - 1e-30:
            break
        best, best_cost = signed, cost
        inverted = signed.inverted
    assert best is not None
    return best, best_cost
