"""The paper's core contribution: power-optimal bit-to-TSV assignment.

``assignment``
    Signed permutations (``A_pi`` of Eq. 4/5): which bit drives which TSV,
    and which bits are transmitted inverted.
``power``
    The interconnect power model ``P_n = <T, C>`` (Eq. 1-3) and its
    assignment transforms (Eq. 4 and Eq. 9).
``systematic``
    The Spiral and Sawtooth mappings of Sec. 4 (Fig. 1) plus the generic
    greedy rules they derive from.
``optimize``
    Search for the power-optimal assignment (Eq. 10): simulated annealing
    (optionally multi-chain), exhaustive oracle, greedy descent.
``fastpower``
    Compiled search kernels: O(n) delta-cost move evaluation and batched
    candidate scoring behind the searches (see ``docs/performance.md``).
``pipeline``
    One-call user API tying streams, extraction and optimization together.
"""

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.fastpower import CompiledPowerModel
from repro.core.power import PowerModel
from repro.core.pipeline import (
    AssignmentReport,
    evaluate_assignment,
    optimize_assignment,
    random_baseline_power,
)
from repro.core.systematic import sawtooth_assignment, spiral_assignment

__all__ = [
    "AssignmentConstraints",
    "SignedPermutation",
    "PowerModel",
    "CompiledPowerModel",
    "AssignmentReport",
    "evaluate_assignment",
    "optimize_assignment",
    "random_baseline_power",
    "sawtooth_assignment",
    "spiral_assignment",
]
