"""Compiled fast-path kernels for the Eq. 10 assignment search.

:class:`~repro.core.power.PowerModel` evaluates an assignment by building
line-domain statistics (Eq. 4), materializing the capacitance matrix
(Eq. 9) and taking the Frobenius product — ``O(n^2)`` work plus several
array allocations per candidate. The searches in
:mod:`repro.core.optimize` probe thousands of candidates that differ from
the current assignment by a *single local move* (a bit-pair swap or an
inversion toggle), so almost all of that work is recomputed unchanged.

:class:`CompiledPowerModel` precomputes everything that does not depend on
the assignment — the bit-domain coupling matrix, the self-switching and
probability vectors, and the ``(C_R, dC)`` decomposition of the linear
capacitance model — and exploits the structure of the power functional

``P(o, s) = sum_ij [ sw_i - (1 - d_ij) Tc_ij ] C_ij``

(``o`` the bit-of-line order, ``s`` the per-line inversion signs,
``C_ij = C_R,ij + dC_ij (e_i + e_j)``): a local move perturbs only one or
two rows/columns of the line-domain matrices, so its cost change is a sum
over the touched entries. A fixed capacitance matrix is the special case
``dC = 0``.

Three evaluation tiers are offered:

* :meth:`CompiledPowerModel.power` — one assignment, ``O(n^2)``, same
  operation sequence as :meth:`PowerModel.power` (bit-identical result);
* :meth:`CompiledPowerModel.powers` — a batch of ``k`` assignments in one
  vectorized ``O(k n^2)`` pass (random baselines, exhaustive enumeration);
* :meth:`CompiledPowerModel.start` — a mutable :class:`SearchState` whose
  :meth:`~SearchState.delta_swaps` / :meth:`~SearchState.delta_toggles`
  price whole batches of candidate moves against the current state in one
  set of vectorized operations.

:class:`SearchState` maintains per-line aggregate sums (refreshed in
``O(n^2)`` whenever a move is *applied* — applications are rare next to
pricings) that collapse the cost change of an inversion toggle to ``O(1)``
and of a bit-pair swap to ``O(n)`` per candidate. The toggle/swap kernels
assume the capacitance matrices are symmetric (SPICE-form matrices always
are; :attr:`CompiledPowerModel.symmetric` records the check, and
:func:`as_compiled` falls back to the generic path otherwise). The delta
updates are algebraically exact; the cached state power is re-derived from
scratch on every applied move, so it never drifts. See
``docs/performance.md`` for the derivation and measured speedups.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.analysis.contracts import check_enabled, check_signed_permutation
from repro.core.assignment import SignedPermutation
from repro.core.power import PowerModel
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel


class CompiledPowerModel:
    """Assignment-evaluation kernels compiled from a :class:`PowerModel`.

    Immutable once built; many :class:`SearchState` instances (e.g. one per
    annealing chain) may share one compiled model concurrently.
    """

    def __init__(
        self,
        stats: BitStatistics,
        capacitance: Union[np.ndarray, LinearCapacitanceModel],
    ) -> None:
        n = stats.n_lines
        self.stats = stats
        self.n_lines = n
        #: Bit-domain self switching ``E{db_i^2}``.
        self.self_switching = np.asarray(stats.self_switching, dtype=float)
        #: Bit-domain coupling with a zeroed diagonal (``T_c`` of Eq. 3).
        self.t_c = np.asarray(stats.t_c, dtype=float)
        #: Bit-domain 1-probabilities ``E{b_i}``.
        self.probabilities = np.asarray(stats.probabilities, dtype=float)
        if isinstance(capacitance, LinearCapacitanceModel):
            if capacitance.n_lines != n:
                raise ValueError("capacitance model size mismatch")
            self.c_r = np.asarray(capacitance.c_r, dtype=float)
            self.delta_c = np.asarray(capacitance.delta_c, dtype=float)
            self.mos_aware = True
        else:
            capacitance = np.asarray(capacitance, dtype=float)
            if capacitance.shape != (n, n):
                raise ValueError("capacitance matrix size mismatch")
            self.c_r = capacitance
            self.delta_c = np.zeros((n, n))
            self.mos_aware = False
        #: Whether the capacitance decomposition is symmetric (physically
        #: always true for SPICE-form matrices; the delta kernels rely on
        #: it, checked up to float-fit noise).
        self.symmetric = bool(
            np.allclose(self.c_r, self.c_r.T, rtol=1e-6, atol=0.0)
            and np.allclose(self.delta_c, self.delta_c.T, rtol=1e-6, atol=0.0)
        )
        #: Row sums of ``C_R`` and ``dC`` (line-constant aggregates).
        self.crs = self.c_r.sum(axis=1)
        self.dsum = self.delta_c.sum(axis=1)
        #: Diagonals, contiguous for cheap fancy-index gathers.
        self.crdiag = np.ascontiguousarray(np.diagonal(self.c_r))
        self.ddiag = np.ascontiguousarray(np.diagonal(self.delta_c))
        #: ``[diag C_R, diag dC]`` stacked for the swap-kernel corrections.
        self.diag_stack = np.stack((self.crdiag, self.ddiag))

    @classmethod
    def compile(cls, model: PowerModel) -> "CompiledPowerModel":
        """Compile the kernels for an existing :class:`PowerModel`."""
        if model.cap_model is not None:
            return cls(model.stats, model.cap_model)
        assert model.cap_matrix is not None
        return cls(model.stats, model.cap_matrix)

    # -- single evaluation (reference-exact) -----------------------------------

    def power(self, assignment: Optional[SignedPermutation] = None) -> float:
        """Normalized power ``P_n`` [F]; bit-identical to ``PowerModel.power``.

        The gathers below replay the exact floating-point operation
        sequence of :meth:`SignedPermutation.apply_to_statistics` +
        :meth:`LinearCapacitanceModel.matrix` + :func:`normalized_power`,
        so this agrees with the naive path to the last ulp — which is what
        lets the benchmark gate on strict equality of best powers.
        """
        n = self.n_lines
        if assignment is None:
            assignment = SignedPermutation.identity(n)
        check_enabled(check_signed_permutation, assignment)
        if assignment.n_bits != n:
            raise ValueError("assignment size mismatch")
        order = np.asarray(assignment.bit_of_line)
        inverted = np.asarray(assignment.inverted)[order]
        signs = np.where(inverted, -1.0, 1.0)
        t_c = self.t_c[np.ix_(order, order)] * np.outer(signs, signs)
        probabilities = self.probabilities[order].copy()
        probabilities[inverted] = 1.0 - probabilities[inverted]
        eps = probabilities - 0.5
        cap = self.c_r + self.delta_c * (eps[:, None] + eps[None, :])
        self_switching = self.self_switching[order]
        self_term = float(self_switching @ cap.sum(axis=1))
        coupling_term = float(np.sum(t_c * cap))
        return self_term - coupling_term

    # -- batched evaluation ----------------------------------------------------

    def powers(
        self, assignments: Sequence[SignedPermutation]
    ) -> np.ndarray:
        """Normalized powers of ``k`` assignments in one vectorized pass.

        Returns a ``(k,)`` float array; ``O(k n^2)`` time and memory but a
        single set of NumPy dispatches, which is what makes sampled random
        baselines and chunked exhaustive enumeration cheap.
        """
        k = len(assignments)
        n = self.n_lines
        if k == 0:
            return np.empty(0)
        order = np.empty((k, n), dtype=np.intp)
        inverted = np.empty((k, n), dtype=bool)
        for idx, assignment in enumerate(assignments):
            check_enabled(check_signed_permutation, assignment)
            if assignment.n_bits != n:
                raise ValueError("assignment size mismatch")
            row = np.asarray(assignment.bit_of_line)
            order[idx] = row
            inverted[idx] = np.asarray(assignment.inverted)[row]
        signs = np.where(inverted, -1.0, 1.0)
        t_c = (
            self.t_c[order[:, :, None], order[:, None, :]]
            * signs[:, :, None] * signs[:, None, :]
        )
        probabilities = self.probabilities[order].copy()
        probabilities[inverted] = 1.0 - probabilities[inverted]
        eps = probabilities - 0.5
        cap = self.c_r[None] + self.delta_c[None] * (
            eps[:, :, None] + eps[:, None, :]
        )
        self_switching = self.self_switching[order]
        self_term = np.einsum("ki,kij->k", self_switching, cap)
        coupling_term = np.einsum("kij,kij->k", t_c, cap)
        return self_term - coupling_term

    # -- search state ----------------------------------------------------------

    def start(self, assignment: SignedPermutation) -> "SearchState":
        """Begin a delta-evaluated search at ``assignment``."""
        return SearchState(self, assignment)


class SearchState:
    """Mutable line-domain state of one delta-cost search chain.

    Holds the line-indexed self-switching vector, signed epsilon vector and
    signed coupling matrix of the current assignment, its exact power, and
    per-line aggregate sums that make candidate moves cheap to price:

    * ``delta_toggles`` — an inversion toggle of line ``l`` only rescales
      row/column ``l`` of the coupling matrix and shifts ``e_l``, so with
      the row/column sums of ``t*C`` and ``t*dC`` and the ``s``-weighted
      column sums of ``dC`` kept up to date, its cost change is a couple of
      per-line lookups: **O(1)** per candidate.
    * ``delta_swaps`` — a bit-pair swap conjugates the coupling matrix by a
      transposition and exchanges two line payloads; re-indexing the swapped
      sum against the original shows the change is a handful of length-``n``
      inner products against the capacitance *row differences*: **O(n)** per
      candidate.

    Both kernels are batched (``(B,)``/``(B, 2)`` candidate arrays in,
    ``(B,)`` deltas out) so a whole proposal batch costs one set of NumPy
    dispatches. The aggregates are rebuilt in ``O(n^2)`` whenever a move is
    *applied* — applications are rare next to pricings in annealing and
    greedy descent. Not thread-safe — use one state per chain.
    """

    __slots__ = (
        "compiled", "line_of_bit", "bit_of_line", "inverted",
        "sw", "p", "eps", "power",
        "_all", "_tt", "_capdc", "_agg", "_tog_lin", "_tc_sum",
    )

    def __init__(
        self, compiled: CompiledPowerModel, assignment: SignedPermutation
    ) -> None:
        n = compiled.n_lines
        check_enabled(check_signed_permutation, assignment)
        if assignment.n_bits != n:
            raise ValueError("assignment size mismatch")
        if not compiled.symmetric:
            raise ValueError(
                "delta-cost search requires a symmetric capacitance model"
            )
        self.compiled = compiled
        self.line_of_bit = np.asarray(assignment.line_of_bit, dtype=np.intp)
        self.bit_of_line = np.asarray(assignment.bit_of_line, dtype=np.intp)
        self.inverted = np.asarray(assignment.inverted, dtype=bool)
        order = self.bit_of_line
        flipped = self.inverted[order]
        signs = np.where(flipped, -1.0, 1.0)
        self.sw = compiled.self_switching[order].copy()
        self.p = compiled.probabilities[order].copy()
        self.p[flipped] = 1.0 - self.p[flipped]
        self.eps = self.p - 0.5
        t_c = compiled.t_c[np.ix_(order, order)] * np.outer(signs, signs)
        # [C_R, dC, t, t^T] stacked: one fancy-index gather yields the
        # capacitance rows plus the rows *and* columns of ``t`` at a set
        # of lines, which is most of what the swap kernel reads. ``_tt``
        # is the mutable [t, t^T] view the moves update in place.
        self._all = np.empty((4, n, n))
        self._all[0] = compiled.c_r
        self._all[1] = compiled.delta_c
        self._all[2] = t_c
        self._all[3] = t_c.T
        self._tt = self._all[2:]
        # Reused [C, dC] buffer: slot 1 is the constant dC, slot 0 is
        # rebuilt from the current eps on every refresh; one multiply with
        # t then yields both t*C and t*dC.
        self._capdc = np.empty((2, n, n))
        self._capdc[1] = compiled.delta_c
        # Per-line aggregates for the swap kernel: [crs, dsum, w, sd] with
        # the first two rows constant.
        self._agg = np.empty((4, n))
        self._agg[0] = compiled.crs
        self._agg[1] = compiled.dsum
        self._refresh()

    @property
    def t_c(self) -> np.ndarray:
        """Line-domain signed coupling matrix of the current assignment."""
        return self._tt[0]

    # -- views -----------------------------------------------------------------

    def assignment(self) -> SignedPermutation:
        """The current assignment as an immutable :class:`SignedPermutation`."""
        return SignedPermutation(
            tuple(int(x) for x in self.line_of_bit),
            tuple(bool(x) for x in self.inverted),
        )

    # -- aggregate maintenance -------------------------------------------------

    def _refresh(self) -> None:
        """Rebuild the per-line aggregates and the exact power, ``O(n^2)``."""
        comp = self.compiled
        eps = self.eps
        cap = self._capdc[0]
        np.multiply(comp.delta_c, eps[:, None] + eps[None, :], out=cap)
        cap += comp.c_r
        # One broadcast multiply yields [t*C, t*dC].
        tcd = self._tt[0] * self._capdc
        rows = tcd.sum(axis=2)
        cols = tcd.sum(axis=1)
        # ``w_l = (dC @ e)_l`` and ``sd_l = (s @ dC)_l`` feed the
        # self-switching term of the swap kernel; the constant row sums
        # occupy rows 0/1 of the aggregate table.
        self._agg[2] = comp.delta_c @ eps
        self._agg[3] = self.sw @ comp.delta_c
        self._tog_lin = self._agg[3] + rows[1] + cols[1]
        self._tc_sum = rows[0] + cols[0]
        self.power = float(self.sw @ cap.sum(axis=1)) - float(tcd[0].sum())

    def resync(self) -> None:
        """Recompute the cached power and aggregates from scratch."""
        self._refresh()

    # -- move pricing (state unchanged) ----------------------------------------

    def delta_toggles(self, bits: np.ndarray) -> np.ndarray:
        """Power changes of toggling each bit's inversion (Eq. 9 sign flip).

        ``bits`` is a ``(B,)`` int array of candidate bits; returns the
        ``(B,)`` array of power deltas, all priced against the current
        state. ``O(1)`` per candidate: toggling line ``l`` negates row and
        column ``l`` of ``t`` and moves ``e_l`` to ``e'_l``, so

        ``delta = (e' - e)(s_l D_l + sd_l + tdr_l + tdc_l) + 2(tcr_l + tcc_l)``

        with ``D`` the ``dC`` row sums and ``tdr/tdc/tcr/tcc`` the
        maintained row/column sums of ``t*dC`` and ``t*C``.
        """
        bits = np.asarray(bits, dtype=np.intp)
        lines = self.line_of_bit[bits]
        eps_new = (1.0 - self.p[lines]) - 0.5
        de = eps_new - self.eps[lines]
        comp = self.compiled
        return (
            de * (self.sw[lines] * comp.dsum[lines] + self._tog_lin[lines])
            + 2.0 * self._tc_sum[lines]
        )

    def delta_swaps(self, pairs: np.ndarray) -> np.ndarray:
        """Power changes of swapping each bit pair's lines.

        ``pairs`` is a ``(B, 2)`` int array of candidate bit pairs; returns
        the ``(B,)`` array of power deltas, all priced against the current
        state. ``O(n)`` per candidate: substituting the transposition into
        the swapped power sum and re-indexing leaves inner products of the
        ``t`` rows/columns at the two lines against the capacitance row
        differences ``C_R[lb]-C_R[la]`` and ``dC[lb]-dC[la]`` (symmetry
        makes the column differences the same vectors), plus closed-form
        corrections at the four entries the transposition maps onto
        themselves.
        """
        comp = self.compiled
        eps = self.eps
        pairs = np.asarray(pairs, dtype=np.intp)
        ll = self.line_of_bit[pairs.T]           # (2, B): [la, lb]
        la, lb = ll[0], ll[1]
        e_ab = eps[ll]                           # (2, B)
        e_a, e_b = e_ab[0], e_ab[1]
        s_ab = self.sw[ll]
        # One gather of [C_R, dC, t, t^T] rows at both lines.
        gathered = self._all[:, ll, :]           # (4, 2, B, n)
        rows = gathered[:2]                      # [cr/dc, a/b]
        # Row differences of [C_R, dC]; symmetry makes them the column
        # differences too.
        diff = rows[:, 1]
        diff -= rows[:, 0]                       # (2, B, n): [crd, dd]
        # Turn crd into x = crd + dd * e in place: diff becomes [x, dd].
        diff[0] += diff[1] * eps[None, :]
        x_dd = diff
        # Rows and columns of t at both lines against x and dd: all eight
        # inner products in one contraction. tt_ab[r, p] is row (r=0) or
        # column (r=1) of t at line a (p=0) / b (p=1).
        tt_ab = gathered[2:]                     # (2, 2, B, n)
        prods = np.einsum("rpbn,ybn->pyb", tt_ab, x_dd)      # (2, 2, B)
        # The four (i, j) entries with both indices in {la, lb} contribute
        # exactly zero (symmetry cancels them); remove what the row/column
        # inner products counted for them.
        cross = self._all[:, la, lb]             # (4, B): C_R/dC/t/t^T at
        cd_g = cross[:2]                         # (la, lb)
        diag_g = comp.diag_stack[:, ll]          # (2, 2, B)
        diag_sum = diag_g.sum(axis=1) - 2.0 * cd_g           # (2, B)
        t_cross = cross[2] + cross[3]                        # t_ab + t_ba
        eps_sum = e_a + e_b
        # Change of the coupling term sum(t * C).
        coupling = (
            prods[0, 0] + e_a * prods[0, 1]
            - prods[1, 0] - e_b * prods[1, 1]
            - t_cross * (diag_sum[0] + diag_sum[1] * eps_sum)
        )
        # Change of the self term s . R with R the capacitance row totals:
        # only the la/lb payload exchange and the e-shift of w matter.
        agg_g = self._agg[:, ll]                 # (4, 2, B)
        aggd = agg_g[:, 0] - agg_g[:, 1]
        ds = s_ab[1] - s_ab[0]
        de = e_b - e_a
        self_term = (
            ds * (aggd[0] + aggd[2])
            + aggd[1] * (s_ab[1] * e_b - s_ab[0] * e_a)
            + de * (aggd[3] + ds * diag_sum[1])
        )
        return self_term - coupling

    def delta_toggle(self, bit: int) -> float:
        """Power change of a single inversion toggle (batch-of-one)."""
        return float(self.delta_toggles(np.array([bit]))[0])

    def delta_swap(self, bit_a: int, bit_b: int) -> float:
        """Power change of a single bit-pair swap (batch-of-one)."""
        if self.line_of_bit[bit_a] == self.line_of_bit[bit_b]:
            return 0.0
        return float(self.delta_swaps(np.array([[bit_a, bit_b]]))[0])

    # -- move application ------------------------------------------------------

    def toggle(self, bit: int, delta: Optional[float] = None) -> float:
        """Commit an inversion toggle; returns its delta."""
        if delta is None:
            delta = self.delta_toggle(bit)
        line = int(self.line_of_bit[bit])
        self.inverted[bit] = not self.inverted[bit]
        self.p[line] = 1.0 - self.p[line]
        self.eps[line] = self.p[line] - 0.5
        # Negate row and column `line` of both t and its transpose (the
        # doubly-negated diagonal entry is zero anyway).
        self._tt[:, line, :] *= -1.0
        self._tt[:, :, line] *= -1.0
        self._refresh()
        return delta

    def swap(
        self, bit_a: int, bit_b: int, delta: Optional[float] = None
    ) -> float:
        """Commit a bit-pair swap; returns its delta."""
        if delta is None:
            delta = self.delta_swap(bit_a, bit_b)
        la = int(self.line_of_bit[bit_a])
        lb = int(self.line_of_bit[bit_b])
        if la == lb:
            return 0.0
        self.line_of_bit[bit_a], self.line_of_bit[bit_b] = lb, la
        self.bit_of_line[la], self.bit_of_line[lb] = bit_b, bit_a
        for arr in (self.sw, self.p, self.eps):
            arr[la], arr[lb] = arr[lb], arr[la]
        self._tt[:, [la, lb], :] = self._tt[:, [lb, la], :]
        self._tt[:, :, [la, lb]] = self._tt[:, :, [lb, la]]
        self._refresh()
        return delta


class PopulationState:
    """Stacked :class:`SearchState` for ``C`` lockstep annealing chains.

    Population annealing (see :func:`repro.core.optimize.simulated_annealing`)
    advances all restart chains through their proposal windows together,
    so each pricing round wants *one* batched kernel call across every
    chain instead of one call per chain. This class holds the per-chain
    search state stacked along a leading chain axis — ``(C, 4, n, n)``
    matrix stacks, ``(C, n)`` line payloads, ``(C, 4, n)`` aggregates —
    and prices mixed-chain batches with chain-indexed gathers.

    **Bit-identity contract:** every per-chain quantity is maintained with
    the same floating-point operation sequence as a standalone
    :class:`SearchState` (refreshes run per chain on contiguous views, the
    swap kernel's gather is forced to the same memory layout before its
    einsum), so pricing chain ``c``'s proposals here returns the same
    deltas, to the last ulp, as pricing them on chain ``c``'s own state.
    That is what makes population annealing decision-identical to the
    thread-per-chain path. Commits refresh only the touched chain
    (``O(n^2)``); commits are rare next to pricings, exactly as for
    :class:`SearchState`. Not thread-safe — the population advances in one
    thread, that being the point.
    """

    __slots__ = (
        "compiled", "n_chains", "line_of_bit", "bit_of_line", "inverted",
        "sw", "p", "eps", "powers",
        "_all", "_capdc", "_agg", "_tog_lin", "_tc_sum",
    )

    def __init__(
        self,
        compiled: CompiledPowerModel,
        assignments: Sequence[SignedPermutation],
    ) -> None:
        if not compiled.symmetric:
            raise ValueError(
                "delta-cost search requires a symmetric capacitance model"
            )
        n = compiled.n_lines
        n_chains = len(assignments)
        if n_chains < 1:
            raise ValueError("population needs at least one chain")
        self.compiled = compiled
        self.n_chains = n_chains
        self.line_of_bit = np.empty((n_chains, n), dtype=np.intp)
        self.bit_of_line = np.empty((n_chains, n), dtype=np.intp)
        self.inverted = np.empty((n_chains, n), dtype=bool)
        self.sw = np.empty((n_chains, n))
        self.p = np.empty((n_chains, n))
        self.eps = np.empty((n_chains, n))
        self.powers = np.empty(n_chains)
        self._all = np.empty((n_chains, 4, n, n))
        self._agg = np.empty((n_chains, 4, n))
        self._tog_lin = np.empty((n_chains, n))
        self._tc_sum = np.empty((n_chains, n))
        # Shared refresh scratch; slot 1 is the constant dC (see
        # SearchState), slot 0 is rebuilt per refreshed chain.
        self._capdc = np.empty((2, n, n))
        self._capdc[1] = compiled.delta_c
        for chain, assignment in enumerate(assignments):
            check_enabled(check_signed_permutation, assignment)
            if assignment.n_bits != n:
                raise ValueError("assignment size mismatch")
            self.line_of_bit[chain] = np.asarray(
                assignment.line_of_bit, dtype=np.intp
            )
            self.bit_of_line[chain] = np.asarray(
                assignment.bit_of_line, dtype=np.intp
            )
            self.inverted[chain] = np.asarray(assignment.inverted, dtype=bool)
            order = self.bit_of_line[chain]
            flipped = self.inverted[chain][order]
            signs = np.where(flipped, -1.0, 1.0)
            self.sw[chain] = compiled.self_switching[order]
            p = compiled.probabilities[order].copy()
            p[flipped] = 1.0 - p[flipped]
            self.p[chain] = p
            self.eps[chain] = p - 0.5
            t_c = compiled.t_c[np.ix_(order, order)] * np.outer(signs, signs)
            self._all[chain, 0] = compiled.c_r
            self._all[chain, 1] = compiled.delta_c
            self._all[chain, 2] = t_c
            self._all[chain, 3] = t_c.T
            self._agg[chain, 0] = compiled.crs
            self._agg[chain, 1] = compiled.dsum
            self._refresh(chain)

    # -- views -----------------------------------------------------------------

    def assignment(self, chain: int) -> SignedPermutation:
        """Chain ``chain``'s current assignment (immutable snapshot)."""
        return SignedPermutation(
            tuple(int(x) for x in self.line_of_bit[chain]),
            tuple(bool(x) for x in self.inverted[chain]),
        )

    # -- aggregate maintenance -------------------------------------------------

    def _refresh(self, chain: int) -> None:
        """Rebuild one chain's aggregates and exact power, ``O(n^2)``.

        Runs the exact operation sequence of ``SearchState._refresh`` on
        chain views (refreshes happen only on commits, so a per-chain pass
        costs nothing next to the batched pricings it enables).
        """
        comp = self.compiled
        eps = self.eps[chain]
        cap = self._capdc[0]
        np.multiply(comp.delta_c, eps[:, None] + eps[None, :], out=cap)
        cap += comp.c_r
        tt = self._all[chain, 2:]
        tcd = tt[0] * self._capdc
        rows = tcd.sum(axis=2)
        cols = tcd.sum(axis=1)
        agg = self._agg[chain]
        agg[2] = comp.delta_c @ eps
        agg[3] = self.sw[chain] @ comp.delta_c
        self._tog_lin[chain] = agg[3] + rows[1] + cols[1]
        self._tc_sum[chain] = rows[0] + cols[0]
        self.powers[chain] = (
            float(self.sw[chain] @ cap.sum(axis=1)) - float(tcd[0].sum())
        )

    # -- move pricing (state unchanged) ----------------------------------------

    def delta_toggles(
        self, chains: np.ndarray, bits: np.ndarray
    ) -> np.ndarray:
        """Toggle deltas for a mixed-chain batch: ``bits[i]`` on ``chains[i]``.

        Elementwise chain-indexed gathers around the same O(1) formula as
        :meth:`SearchState.delta_toggles`; per element the float operation
        sequence is identical, so the deltas are bit-equal.
        """
        chains = np.asarray(chains, dtype=np.intp)
        bits = np.asarray(bits, dtype=np.intp)
        lines = self.line_of_bit[chains, bits]
        eps_new = (1.0 - self.p[chains, lines]) - 0.5
        de = eps_new - self.eps[chains, lines]
        comp = self.compiled
        return (
            de * (
                self.sw[chains, lines] * comp.dsum[lines]
                + self._tog_lin[chains, lines]
            )
            + 2.0 * self._tc_sum[chains, lines]
        )

    def delta_swaps(
        self, chains: np.ndarray, pairs: np.ndarray
    ) -> np.ndarray:
        """Swap deltas for a mixed-chain batch: ``pairs[i]`` on ``chains[i]``.

        The chain-indexed gather is forced to the exact memory layout of
        :meth:`SearchState.delta_swaps`' gather before the shared einsum
        contraction, so each proposal's delta is bit-equal to what its own
        chain's :class:`SearchState` would return.
        """
        comp = self.compiled
        chains = np.asarray(chains, dtype=np.intp)
        pairs = np.asarray(pairs, dtype=np.intp)
        ll = self.line_of_bit[chains, pairs.T]   # (2, B): [la, lb]
        la, lb = ll[0], ll[1]
        e_ab = self.eps[chains, ll]              # (2, B)
        e_a, e_b = e_ab[0], e_ab[1]
        s_ab = self.sw[chains, ll]
        # Chain-indexed gather of [C_R, dC, t, t^T] rows at both lines.
        # NumPy lays an advanced-index result out advanced-dims-first, so
        # SearchState's ``_all[:, ll, :]`` is a (4, 2, B, n) *view* of a
        # (2, B, 4, n) buffer; this gather's buffer already has exactly
        # that layout, and moveaxis (no copy!) reproduces the view — the
        # shared einsum then walks identical strides, keeping every delta
        # bit-equal to the per-chain path.
        gathered = np.moveaxis(self._all[chains, :, ll, :], 2, 0)
        rows = gathered[:2]
        diff = rows[:, 1]
        diff -= rows[:, 0]
        diff[0] += diff[1] * self.eps[chains]
        x_dd = diff
        tt_ab = gathered[2:]
        prods = np.einsum("rpbn,ybn->pyb", tt_ab, x_dd)      # (2, 2, B)
        cross = self._all[chains, :, la, lb].T               # (4, B)
        cd_g = cross[:2]
        diag_g = comp.diag_stack[:, ll]                      # (2, 2, B)
        diag_sum = diag_g.sum(axis=1) - 2.0 * cd_g           # (2, B)
        t_cross = cross[2] + cross[3]
        eps_sum = e_a + e_b
        coupling = (
            prods[0, 0] + e_a * prods[0, 1]
            - prods[1, 0] - e_b * prods[1, 1]
            - t_cross * (diag_sum[0] + diag_sum[1] * eps_sum)
        )
        agg_g = np.moveaxis(self._agg[chains, :, ll], 2, 0)  # (4, 2, B)
        aggd = agg_g[:, 0] - agg_g[:, 1]
        ds = s_ab[1] - s_ab[0]
        de = e_b - e_a
        self_term = (
            ds * (aggd[0] + aggd[2])
            + aggd[1] * (s_ab[1] * e_b - s_ab[0] * e_a)
            + de * (aggd[3] + ds * diag_sum[1])
        )
        return self_term - coupling

    # -- move application ------------------------------------------------------

    def toggle(self, chain: int, bit: int) -> None:
        """Commit an inversion toggle on one chain."""
        line = int(self.line_of_bit[chain, bit])
        self.inverted[chain, bit] = not self.inverted[chain, bit]
        self.p[chain, line] = 1.0 - self.p[chain, line]
        self.eps[chain, line] = self.p[chain, line] - 0.5
        tt = self._all[chain, 2:]
        tt[:, line, :] *= -1.0
        tt[:, :, line] *= -1.0
        self._refresh(chain)

    def swap(self, chain: int, bit_a: int, bit_b: int) -> None:
        """Commit a bit-pair swap on one chain."""
        la = int(self.line_of_bit[chain, bit_a])
        lb = int(self.line_of_bit[chain, bit_b])
        if la == lb:
            return
        self.line_of_bit[chain, bit_a] = lb
        self.line_of_bit[chain, bit_b] = la
        self.bit_of_line[chain, la] = bit_b
        self.bit_of_line[chain, lb] = bit_a
        for arr in (self.sw, self.p, self.eps):
            arr[chain, la], arr[chain, lb] = arr[chain, lb], arr[chain, la]
        tt = self._all[chain, 2:]
        tt[:, [la, lb], :] = tt[:, [lb, la], :]
        tt[:, :, [la, lb]] = tt[:, :, [lb, la]]
        self._refresh(chain)


def as_compiled(
    cost: Union[PowerModel, CompiledPowerModel, object],
) -> Optional[CompiledPowerModel]:
    """Compiled kernels for a search cost, or ``None`` for generic callables.

    Also returns ``None`` for a (physically impossible) asymmetric
    capacitance decomposition, which the delta kernels do not support —
    the searches then silently take the generic path.
    """
    if isinstance(cost, CompiledPowerModel):
        return cost if cost.symmetric else None
    if isinstance(cost, PowerModel):
        compiled = CompiledPowerModel.compile(cost)
        return compiled if compiled.symmetric else None
    return None


def random_assignments(
    n: int,
    k: int,
    rng: np.random.Generator,
    with_inversions: bool = False,
) -> List[SignedPermutation]:
    """``k`` uniformly random assignments (batched-baseline helper)."""
    return [
        SignedPermutation.random(n, rng, with_inversions=with_inversions)
        for _ in range(k)
    ]


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "CompiledPowerModel": {
        "stats": "BitStatistics",
        "capacitance": "(N, N) farad spice | LinearCapacitanceModel",
    },
    "CompiledPowerModel.compile": {
        "model": "PowerModel",
        "return": "CompiledPowerModel",
    },
    "CompiledPowerModel.power": {
        "assignment": "SignedPermutation",
        "return": "scalar farad",
    },
    "CompiledPowerModel.powers": {
        "assignments": "any",
        "return": "(N,) farad",
    },
    "CompiledPowerModel.start": {
        "assignment": "SignedPermutation",
        "return": "SearchState",
    },
    "CompiledPowerModel.self_switching": "(N,) probability",
    "CompiledPowerModel.t_c": "(N, N) dimensionless",
    "CompiledPowerModel.probabilities": "(N,) probability",
    "CompiledPowerModel.c_r": "(N, N) farad spice",
    "CompiledPowerModel.delta_c": "(N, N) farad",
    "CompiledPowerModel.crs": "(N,) farad",
    "CompiledPowerModel.dsum": "(N,) farad",
    "CompiledPowerModel.crdiag": "(N,) farad",
    "CompiledPowerModel.ddiag": "(N,) farad",
    "CompiledPowerModel.n_lines": "scalar dimensionless",
    "SearchState.delta_toggles": {
        "bits": "(N,) dimensionless",
        "return": "(N,) farad",
    },
    "SearchState.delta_swaps": {
        "pairs": "any",
        "return": "(N,) farad",
    },
    "SearchState.delta_toggle": {
        "bit": "scalar dimensionless",
        "return": "scalar farad",
    },
    "SearchState.delta_swap": {
        "bit_a": "scalar dimensionless",
        "bit_b": "scalar dimensionless",
        "return": "scalar farad",
    },
    "SearchState.toggle": {
        "bit": "scalar dimensionless",
        "delta": "scalar farad",
        "return": "scalar farad",
    },
    "SearchState.swap": {
        "bit_a": "scalar dimensionless",
        "bit_b": "scalar dimensionless",
        "delta": "scalar farad",
        "return": "scalar farad",
    },
    "SearchState.assignment": {"return": "SignedPermutation"},
    "SearchState.power": "scalar farad",
    "PopulationState": {
        "compiled": "CompiledPowerModel",
        "assignments": "any",
    },
    "PopulationState.delta_toggles": {
        "chains": "(N,) dimensionless",
        "bits": "(N,) dimensionless",
        "return": "(N,) farad",
    },
    "PopulationState.delta_swaps": {
        "chains": "(N,) dimensionless",
        "pairs": "any",
        "return": "(N,) farad",
    },
    "PopulationState.toggle": {
        "chain": "scalar dimensionless",
        "bit": "scalar dimensionless",
    },
    "PopulationState.swap": {
        "chain": "scalar dimensionless",
        "bit_a": "scalar dimensionless",
        "bit_b": "scalar dimensionless",
    },
    "PopulationState.assignment": {
        "chain": "scalar dimensionless",
        "return": "SignedPermutation",
    },
    "PopulationState.powers": "(N,) farad",
    # Exactness discipline (REP3xx): compiled evaluations back the
    # fast/naive parity gate, so they must be pure functions of the
    # model and assignment — and their batched float contractions are
    # order-sensitive, never to be folded into an exact-int tally.
    "@order_sensitive": ["CompiledPowerModel.power"],
    "@deterministic": ["CompiledPowerModel.compile"],
}
