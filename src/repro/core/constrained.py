"""Delay-constrained assignment optimization (power/SI co-optimization).

The plain Eq. 10 search minimizes power alone. But the assignment also
moves the *crosstalk delay*: which bits end up adjacent decides which
Miller factors the array sees, so a power-optimal mapping can concentrate
anti-parallel bit pairs on strongly coupled TSVs and slow the link down.
This module optimizes power **subject to a worst-case delay bound**:

* :func:`pairwise_miller_bounds` scans the data stream once for the worst
  Miller factor each bit pair can exhibit (0 = only same-direction
  switching observed, 1 = solo switching, 2 = opposite switching occurs);
* :class:`DelayModel` turns an assignment into the worst per-line Elmore
  delay implied by those factors (a decomposable, conservative bound on the
  true stream worst case);
* :func:`delay_constrained_annealing` runs the annealer on the penalized
  objective and reports power, delay and feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.optimize import SearchResult, simulated_annealing
from repro.core.power import PowerModel
from repro.si.delay import elmore_delay
from repro.stats.switching import BitStatistics, validate_bit_stream
from repro.tsv.geometry import TSVArrayGeometry


def pairwise_miller_bounds(bits: np.ndarray) -> np.ndarray:
    """Worst observed Miller factor per (victim bit, aggressor bit) pair.

    Entry ``[b, a]`` is 2 when the stream contains a cycle where ``b`` and
    ``a`` switch in opposite directions, 1 when ``a`` is ever quiet (or
    co-switching cycles exist but solo ones too) while ``b`` switches, and
    0 when ``a`` always switches *with* ``b``. The diagonal is 0 (a line is
    not its own aggressor).
    """
    bits = validate_bit_stream(bits)
    deltas = np.diff(bits.astype(np.int8), axis=0)
    n = bits.shape[1]
    bounds = np.zeros((n, n))
    switching = deltas != 0
    for b in range(n):
        rows = switching[:, b]
        if not rows.any():
            continue
        db = deltas[rows, b][:, None].astype(np.int16)
        da = deltas[rows].astype(np.int16)
        factors = 1.0 - da / db  # 0, 1, or 2 per cycle and aggressor
        bounds[b] = factors.max(axis=0)
    np.fill_diagonal(bounds, 0.0)
    return bounds


@dataclass
class DelayModel:
    """Worst-case Elmore delay of an assignment on one array.

    Parameters
    ----------
    geometry:
        The array (for the TSV series resistance).
    cap_matrix:
        SPICE-form capacitance matrix [F].
    miller_bounds:
        Output of :func:`pairwise_miller_bounds` (bit domain).
    driver_resistance:
        Driver output resistance [Ohm].
    """

    geometry: TSVArrayGeometry
    cap_matrix: np.ndarray
    miller_bounds: np.ndarray
    driver_resistance: float = 1.5e3

    def __post_init__(self) -> None:
        self.cap_matrix = np.asarray(self.cap_matrix, dtype=float)
        n = self.geometry.n_tsvs
        if self.cap_matrix.shape != (n, n):
            raise ValueError("capacitance matrix does not match the array")
        if self.miller_bounds.shape != (n, n):
            raise ValueError("miller bounds do not match the array")
        self._coupling = self.cap_matrix.copy()
        np.fill_diagonal(self._coupling, 0.0)
        self._ground = np.diag(self.cap_matrix)

    def worst_line_delay(self, assignment: SignedPermutation) -> float:
        """Largest per-line Elmore delay under the observed Miller bounds.

        Inversions do not change the delay bound: inverting one bit of a
        pair swaps same-direction and opposite-direction events, but the
        bound keeps the max over both orderings of the *pair*, which the
        stream scan already captured per direction — so we conservatively
        take the pair maximum, making the metric inversion-invariant.
        """
        order = np.asarray(assignment.bit_of_line)
        miller = self.miller_bounds[np.ix_(order, order)]
        miller = np.maximum(miller, miller.T)
        c_eff = self._ground + np.sum(self._coupling * miller, axis=1)
        worst = float(c_eff.max())
        return elmore_delay(self.geometry, worst, self.driver_resistance)


@dataclass(frozen=True)
class ConstrainedResult:
    """Outcome of a delay-constrained search."""

    assignment: SignedPermutation
    power: float
    delay: float
    delay_bound: float
    feasible: bool
    evaluations: int


def delay_constrained_annealing(
    stats: BitStatistics,
    delay_model: DelayModel,
    power_model: PowerModel,
    delay_bound: float,
    penalty_weight: Optional[float] = None,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    with_inversions: bool = True,
    rng: Optional[np.random.Generator] = None,
    steps_per_temperature: Optional[int] = None,
) -> ConstrainedResult:
    """Minimize power subject to ``worst delay <= delay_bound``.

    The bound enters as a linear penalty on the annealing objective,
    scaled so that a 10 % delay violation costs about as much as the whole
    nominal power (heavily discouraging infeasible minima); the returned
    result reports the true (unpenalized) power and delay.
    """
    if delay_bound <= 0.0:
        raise ValueError("delay_bound must be positive")
    if rng is None:
        rng = np.random.default_rng(2018)
    nominal_power = abs(power_model.power())
    if penalty_weight is None:
        penalty_weight = 10.0 * nominal_power / delay_bound

    def cost(assignment: SignedPermutation) -> float:
        power = power_model.power(assignment)
        delay = delay_model.worst_line_delay(assignment)
        violation = max(0.0, delay - delay_bound)
        return power + penalty_weight * violation

    result: SearchResult = simulated_annealing(
        cost,
        stats.n_lines,
        with_inversions=with_inversions,
        constraints=constraints,
        rng=rng,
        steps_per_temperature=steps_per_temperature,
    )
    delay = delay_model.worst_line_delay(result.assignment)
    return ConstrainedResult(
        assignment=result.assignment,
        power=power_model.power(result.assignment),
        delay=delay,
        delay_bound=delay_bound,
        feasible=delay <= delay_bound * (1.0 + 1e-9),
        evaluations=result.evaluations,
    )
