"""Signed permutations: the paper's assignment matrices ``A_pi``.

An assignment maps logical bit *i* to interconnect (TSV) ``line_of_bit[i]``,
optionally inverting it. In matrix form (Eq. 5) a valid ``A_pi`` has exactly
one ``+1`` or ``-1`` per row and per column; the transforms of the switching
matrix (Eq. 4) and of the capacitance matrix (Eq. 9) are plain congruences
with this matrix. :class:`SignedPermutation` stores the same information as
index/sign arrays, which is both faster and harder to get wrong than matrix
algebra, but can produce the explicit matrix for tests and documentation.

:class:`AssignmentConstraints` captures the restrictions the paper's
experiments need: lines whose bit must not be inverted (power/ground lines,
Sec. 5.1) and bits pinned to specific lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.contracts import (
    check_enabled,
    check_signed_permutation,
    check_switching_matrix,
)
from repro.stats.switching import BitStatistics


@dataclass(frozen=True)
class SignedPermutation:
    """Assignment of ``n`` logical bits to ``n`` lines, with inversions.

    Attributes
    ----------
    line_of_bit:
        ``line_of_bit[i]`` is the line (TSV) transmitting bit ``i``.
    inverted:
        ``inverted[i]`` is True when bit ``i`` is transmitted negated.
    """

    line_of_bit: Tuple[int, ...]
    inverted: Tuple[bool, ...]

    def __post_init__(self) -> None:
        n = len(self.line_of_bit)
        if len(self.inverted) != n:
            raise ValueError("line_of_bit and inverted must have equal length")
        if sorted(self.line_of_bit) != list(range(n)):
            raise ValueError(
                f"line_of_bit must be a permutation of 0..{n - 1}, "
                f"got {self.line_of_bit}"
            )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "SignedPermutation":
        """Bit *i* on line *i*, nothing inverted."""
        return cls(tuple(range(n)), (False,) * n)

    @classmethod
    def from_sequence(
        cls,
        line_of_bit: Iterable[int],
        inverted: Optional[Iterable[bool]] = None,
    ) -> "SignedPermutation":
        lines = tuple(int(x) for x in line_of_bit)
        if inverted is None:
            inv = (False,) * len(lines)
        else:
            inv = tuple(bool(x) for x in inverted)
        return cls(lines, inv)

    @classmethod
    def random(
        cls,
        n: int,
        rng: np.random.Generator,
        with_inversions: bool = False,
    ) -> "SignedPermutation":
        """Uniformly random assignment (the paper's baseline reference)."""
        lines = tuple(int(x) for x in rng.permutation(n))
        if with_inversions:
            inv = tuple(bool(x) for x in rng.integers(0, 2, n))
        else:
            inv = (False,) * n
        return cls(lines, inv)

    @classmethod
    def from_matrix(cls, a_pi: np.ndarray) -> "SignedPermutation":
        """Parse an explicit Eq. 5 matrix (one +-1 per row and column)."""
        a = np.asarray(a_pi)
        check_enabled(check_signed_permutation, a)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError("assignment matrix must be square")
        lines = []
        inverted = []
        for i in range(n):  # column i describes bit i
            nonzero = np.flatnonzero(a[:, i])
            if len(nonzero) != 1 or abs(a[nonzero[0], i]) != 1:
                raise ValueError(f"column {i} is not a signed unit vector")
            lines.append(int(nonzero[0]))
            inverted.append(a[nonzero[0], i] < 0)
        perm = cls(tuple(lines), tuple(inverted))
        # Row validity is implied by column validity + permutation check.
        return perm

    # -- views ----------------------------------------------------------------

    @property
    def n_bits(self) -> int:
        return len(self.line_of_bit)

    @property
    def bit_of_line(self) -> Tuple[int, ...]:
        """Inverse mapping: which bit a line carries."""
        inverse = [0] * self.n_bits
        for bit, line in enumerate(self.line_of_bit):
            inverse[line] = bit
        return tuple(inverse)

    def matrix(self) -> np.ndarray:
        """The explicit ``A_pi`` matrix of Eq. 5."""
        n = self.n_bits
        a = np.zeros((n, n))
        for bit, (line, inv) in enumerate(zip(self.line_of_bit, self.inverted)):
            a[line, bit] = -1.0 if inv else 1.0
        return a

    # -- algebra --------------------------------------------------------------

    def compose(self, inner: "SignedPermutation") -> "SignedPermutation":
        """The assignment equivalent to applying ``inner`` first, then self.

        Matrix semantics: ``result.matrix() == self.matrix() @ inner.matrix()``.
        """
        if inner.n_bits != self.n_bits:
            raise ValueError("size mismatch")
        lines = []
        inverted = []
        for bit in range(self.n_bits):
            mid = inner.line_of_bit[bit]
            lines.append(self.line_of_bit[mid])
            inverted.append(inner.inverted[bit] ^ self.inverted[mid])
        return SignedPermutation(tuple(lines), tuple(inverted))

    def inverse(self) -> "SignedPermutation":
        """The assignment undoing this one (``A_pi^-1 = A_pi^T``)."""
        n = self.n_bits
        lines = [0] * n
        inverted = [False] * n
        for bit, (line, inv) in enumerate(zip(self.line_of_bit, self.inverted)):
            lines[line] = bit
            inverted[line] = inv
        return SignedPermutation(tuple(lines), tuple(inverted))

    # -- applying to data and statistics --------------------------------------

    def apply_to_bits(self, bits: np.ndarray) -> np.ndarray:
        """Route a ``(samples, n)`` bit stream onto lines (with inversions).

        Column ``j`` of the result is what line ``j`` physically carries.
        """
        bits = np.asarray(bits)
        if bits.ndim != 2 or bits.shape[1] != self.n_bits:
            raise ValueError(
                f"expected (samples, {self.n_bits}) bit stream, got {bits.shape}"
            )
        out = np.empty_like(bits)
        for bit, (line, inv) in enumerate(zip(self.line_of_bit, self.inverted)):
            column = bits[:, bit]
            out[:, line] = (1 - column) if inv else column
        return out

    def apply_to_statistics(self, stats: BitStatistics) -> BitStatistics:
        """Line-domain statistics: Eq. 4 for ``T`` plus the sign flip of eps.

        Self switching is inversion-invariant (``(-db)^2 = db^2``); coupling
        entries flip sign when exactly one of the two bits is inverted; the
        1-probability of an inverted bit is ``1 - p``.
        """
        if stats.n_lines != self.n_bits:
            raise ValueError("statistics size mismatch")
        check_enabled(check_switching_matrix, stats)
        order = np.asarray(self.bit_of_line)
        signs = np.where(np.asarray(self.inverted)[order], -1.0, 1.0)
        coupling = stats.coupling[np.ix_(order, order)] * np.outer(signs, signs)
        probabilities = stats.probabilities[order].copy()
        flipped = np.asarray(self.inverted)[order]
        probabilities[flipped] = 1.0 - probabilities[flipped]
        return BitStatistics(
            self_switching=stats.self_switching[order],
            coupling=coupling,
            probabilities=probabilities,
            n_samples=stats.n_samples,
        )

    # -- local moves (used by the optimizers) ----------------------------------

    def with_swapped_bits(self, bit_a: int, bit_b: int) -> "SignedPermutation":
        """Exchange the lines (and inversion flags stay with the bits)."""
        lines = list(self.line_of_bit)
        lines[bit_a], lines[bit_b] = lines[bit_b], lines[bit_a]
        return SignedPermutation(tuple(lines), self.inverted)

    def with_toggled_inversion(self, bit: int) -> "SignedPermutation":
        inv = list(self.inverted)
        inv[bit] = not inv[bit]
        return SignedPermutation(self.line_of_bit, tuple(inv))


@dataclass(frozen=True)
class AssignmentConstraints:
    """Restrictions on the assignment search space.

    Attributes
    ----------
    no_invert:
        Bits that must not be inverted (e.g. power/ground lines, Sec. 5.1).
    pinned:
        Mapping bit -> line for bits that must stay on a specific TSV.
    """

    no_invert: FrozenSet[int] = frozenset()
    pinned: Mapping[int, int] = field(default_factory=dict)

    def validate_for(self, n_bits: int) -> None:
        for bit in self.no_invert:
            if not 0 <= bit < n_bits:
                raise ValueError(f"no_invert bit {bit} out of range")
        seen_lines: Dict[int, int] = {}
        for bit, line in self.pinned.items():
            if not 0 <= bit < n_bits:
                raise ValueError(f"pinned bit {bit} out of range")
            if not 0 <= line < n_bits:
                raise ValueError(f"pinned line {line} out of range")
            if line in seen_lines.values():
                raise ValueError(f"line {line} pinned to multiple bits")
            seen_lines[bit] = line

    def allows(self, assignment: SignedPermutation) -> bool:
        """True when the assignment satisfies all constraints."""
        for bit in self.no_invert:
            if assignment.inverted[bit]:
                return False
        for bit, line in self.pinned.items():
            if assignment.line_of_bit[bit] != line:
                return False
        return True

    def free_bits(self, n_bits: int) -> Tuple[int, ...]:
        """Bits whose line may be changed by the optimizer."""
        return tuple(b for b in range(n_bits) if b not in self.pinned)

    def invertible_bits(self, n_bits: int) -> Tuple[int, ...]:
        """Bits whose inversion flag may be toggled."""
        return tuple(b for b in range(n_bits) if b not in self.no_invert)


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "SignedPermutation.identity": {
        "n": "scalar dimensionless",
        "return": "SignedPermutation",
    },
    "SignedPermutation.from_sequence": {
        "line_of_bit": "any",
        "inverted": "any",
        "return": "SignedPermutation",
    },
    "SignedPermutation.random": {
        "n": "scalar dimensionless",
        "rng": "any",
        "with_inversions": "any",
        "return": "SignedPermutation",
    },
    "SignedPermutation.from_matrix": {
        "a_pi": "(N, N) dimensionless",
        "return": "SignedPermutation",
    },
    "SignedPermutation.matrix": {"return": "(N, N) dimensionless"},
    "SignedPermutation.compose": {
        "inner": "SignedPermutation",
        "return": "SignedPermutation",
    },
    "SignedPermutation.inverse": {"return": "SignedPermutation"},
    "SignedPermutation.apply_to_bits": {
        "bits": "(T, N) bit",
        "return": "(T, N) bit",
    },
    "SignedPermutation.apply_to_statistics": {
        "stats": "BitStatistics",
        "return": "BitStatistics",
    },
    "SignedPermutation.with_swapped_bits": {
        "bit_a": "scalar dimensionless",
        "bit_b": "scalar dimensionless",
        "return": "SignedPermutation",
    },
    "SignedPermutation.with_toggled_inversion": {
        "bit": "scalar dimensionless",
        "return": "SignedPermutation",
    },
    "SignedPermutation.n_bits": "scalar dimensionless",
}
