"""Crosstalk-avoidance codes (CAC) for TSV arrays — the related-work
baseline of the paper's introduction (refs [13-15]).

These codes improve signal integrity by *forbidding transition patterns*:
a codebook is chosen such that no transition between any two codewords
makes two adjacent TSVs switch in opposite directions (the 2x-Miller worst
case; "less adjacent transitions" in the 3DLAT sense of ref [14]). The
price is redundancy — fewer than ``2^m`` codewords fit on ``m`` TSVs, so a
given payload needs *more* TSVs. The paper's argument, reproduced in
``repro.experiments.related_work``, is that the extra vias make the total
power *worse*, whereas the bit-to-TSV assignment gets its gains for free.

The codebook is the largest (greedily found) set of mutually compatible
codewords; compatibility is pairwise, so any subset of a compatible set is
also a valid code. Encoding is a static payload -> codeword table lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.tsv.geometry import TSVArrayGeometry


def adjacency_pairs(
    geometry: TSVArrayGeometry, include_diagonal: bool = False
) -> List[Tuple[int, int]]:
    """Adjacent TSV pairs whose opposite switching the code must forbid."""
    pairs = []
    for i in range(geometry.n_tsvs):
        for j in geometry.direct_neighbors(i):
            if j > i:
                pairs.append((i, j))
        if include_diagonal:
            for j in geometry.diagonal_neighbors(i):
                if j > i:
                    pairs.append((i, j))
    return pairs


def _all_words_as_bits(m: int) -> np.ndarray:
    """All 2^m codeword candidates, shape (2^m, m), LSB first."""
    words = np.arange(1 << m, dtype=np.int64)
    shifts = np.arange(m, dtype=np.int64)
    return ((words[:, None] >> shifts) & 1).astype(np.int8)


@dataclass(frozen=True)
class Codebook:
    """A crosstalk-avoidance codebook over ``m`` TSVs.

    Attributes
    ----------
    codewords:
        The selected codewords as integers, in encoding order (payload ``k``
        maps to ``codewords[k]``).
    n_lines:
        Number of TSVs (codeword width) ``m``.
    pairs:
        The adjacency pairs the code protects.
    """

    codewords: Tuple[int, ...]
    n_lines: int
    pairs: Tuple[Tuple[int, int], ...]

    @property
    def payload_bits(self) -> int:
        """Usable payload width: ``floor(log2(len(codewords)))``."""
        return int(np.floor(np.log2(len(self.codewords))))

    @property
    def overhead(self) -> float:
        """TSVs per payload bit, relative to an uncoded link (1.0)."""
        if self.payload_bits == 0:
            return float("inf")
        return self.n_lines / self.payload_bits

    def encode(self, payload: np.ndarray) -> np.ndarray:
        """Map payload words (< 2**payload_bits) to codeword integers."""
        payload = np.asarray(payload)
        if not np.issubdtype(payload.dtype, np.integer):
            raise ValueError("payload must be integer")
        limit = 1 << self.payload_bits
        if ((payload < 0) | (payload >= limit)).any():
            raise ValueError(
                f"payload outside range for {self.payload_bits} bits"
            )
        table = np.asarray(self.codewords, dtype=np.int64)
        return table[payload]

    def decode(self, coded: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode`; raises on non-codewords."""
        coded = np.asarray(coded, dtype=np.int64)
        inverse = {word: k for k, word in enumerate(self.codewords)}
        try:
            return np.array([inverse[int(w)] for w in coded], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"not a codeword: {exc.args[0]}") from exc

    def to_bits(self, coded: np.ndarray) -> np.ndarray:
        """Codeword integers -> physical (samples, n_lines) bit stream."""
        from repro.datagen.util import words_to_bits

        return words_to_bits(np.asarray(coded, dtype=np.int64), self.n_lines)

    def check(self) -> None:
        """Verify the no-opposite-adjacent-transition property exhaustively."""
        bits = np.array(
            [[(w >> k) & 1 for k in range(self.n_lines)]
             for w in self.codewords],
            dtype=np.int8,
        )
        for a in range(len(self.codewords)):
            delta = bits - bits[a]
            for i, j in self.pairs:
                if (delta[:, i] * delta[:, j] == -1).any():
                    raise AssertionError(
                        f"codeword pair violates adjacency ({i}, {j})"
                    )


def build_lat_codebook(
    geometry: TSVArrayGeometry,
    include_diagonal: bool = False,
    max_lines: int = 14,
) -> Codebook:
    """Greedy maximal codebook with no opposite adjacent transitions.

    Scans all ``2^m`` candidates in popcount-then-value order — words of
    similar Hamming weight tend to be pairwise compatible, which roughly
    triples the greedy yield over natural order — and keeps each word that
    is compatible with everything kept so far (compatibility: no adjacent
    TSV pair may switch in opposite directions between the two words).
    Greedy is not guaranteed maximum; on the paper's 3x3 it finds 63
    codewords (5 payload bits on 9 TSVs).
    """
    m = geometry.n_tsvs
    if m > max_lines:
        raise ValueError(
            f"codebook search over 2^{m} candidates refused "
            f"(max_lines={max_lines})"
        )
    pairs = adjacency_pairs(geometry, include_diagonal)
    candidates = _all_words_as_bits(m)
    pair_i = np.array([p[0] for p in pairs])
    pair_j = np.array([p[1] for p in pairs])

    order = sorted(range(1 << m), key=lambda w: (int(bin(w).count("1")), w))
    selected: List[int] = []
    selected_bits: List[np.ndarray] = []
    for word in order:
        cand = candidates[word]
        if selected_bits:
            stack = np.stack(selected_bits)
            delta = cand[None, :] - stack
            products = delta[:, pair_i] * delta[:, pair_j]
            if (products == -1).any():
                continue
        selected.append(word)
        selected_bits.append(cand)
    return Codebook(
        codewords=tuple(selected),
        n_lines=m,
        pairs=tuple(pairs),
    )


def smallest_array_for_payload(
    payload_bits: int,
    pitch: float,
    radius: float,
    include_diagonal: bool = False,
    max_lines: int = 14,
) -> Tuple[TSVArrayGeometry, Codebook]:
    """The smallest (fewest-TSV) array whose LAT codebook carries a payload.

    Scans near-square arrays by increasing TSV count; this is the sizing
    step a designer would do when replacing an uncoded link with a CAC link
    — and the source of the extra power the paper points out.
    """
    if payload_bits < 1:
        raise ValueError("payload_bits must be >= 1")
    shapes: List[Tuple[int, int]] = []
    for total in range(payload_bits, max_lines + 1):
        for rows in range(1, total + 1):
            if total % rows == 0:
                cols = total // rows
                if rows <= cols:
                    shapes.append((rows, cols))
    shapes.sort(key=lambda rc: (rc[0] * rc[1], rc[1] - rc[0]))
    for rows, cols in shapes:
        geometry = TSVArrayGeometry(rows=rows, cols=cols, pitch=pitch,
                                    radius=radius)
        codebook = build_lat_codebook(geometry, include_diagonal, max_lines)
        if codebook.payload_bits >= payload_bits:
            return geometry, codebook
    raise ValueError(
        f"no array up to {max_lines} TSVs carries {payload_bits} payload bits"
    )
