"""Binary <-> Gray coding, with the paper's negated (XNOR) variant.

A binary-to-Gray encoder outputs ``Y[n] = X[n] xor X[n+1]`` (MSB passed
through). For normally distributed data the MSBs are strongly spatially
correlated, so their XOR is *nearly always 0*: Gray coding kills switching
activity but also drags the 1-bit probabilities toward zero — exactly the
wrong polarity for TSVs, whose capacitance shrinks as the average voltage
(1-probability) rises.

Sec. 6 of the paper fixes this for free: swap the XOR gates for XNOR gates
(``negated=True`` here). The code words are bitwise complemented, which
leaves every switching statistic untouched while flipping the parked bits
to logical 1 — larger depletion regions, smaller capacitances.
"""

from __future__ import annotations

import numpy as np

#: Widest word the int64 codecs support: bit ``width`` must still be
#: addressable (the invert codes put a flag there) and ``1 << width``
#: must not overflow a signed 64-bit transport word.
MAX_WORD_WIDTH = 62


def _check(words: np.ndarray, width: int) -> np.ndarray:
    if not 1 <= width <= MAX_WORD_WIDTH:
        raise ValueError(
            f"width must be in 1..{MAX_WORD_WIDTH} (int64 word transport), "
            f"got {width}"
        )
    words = np.asarray(words)
    if not np.issubdtype(words.dtype, np.integer):
        raise ValueError("word stream must be integer")
    if ((words < 0) | (words >= (1 << width))).any():
        raise ValueError(f"words outside unsigned range for width {width}")
    return words.astype(np.int64)


def gray_encode_words(
    words: np.ndarray, width: int, negated: bool = False
) -> np.ndarray:
    """Binary-to-Gray conversion ``y = x ^ (x >> 1)``.

    ``negated=True`` is the XNOR variant of Sec. 6: the bitwise complement
    of the Gray code word within ``width`` bits.
    """
    words = _check(words, width)
    gray = words ^ (words >> 1)
    if negated:
        gray ^= (1 << width) - 1
    return gray


def gray_decode_words(
    words: np.ndarray, width: int, negated: bool = False
) -> np.ndarray:
    """Inverse of :func:`gray_encode_words` (prefix XOR from the MSB)."""
    gray = _check(words, width)
    if negated:
        gray = gray ^ ((1 << width) - 1)
    binary = gray.copy()
    shift = 1
    while shift < width:
        binary ^= binary >> shift
        shift <<= 1
    return binary
