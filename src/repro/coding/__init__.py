"""Classic low-power / NoC coding schemes (paper Sec. 6 and Sec. 7).

The paper's point is not to replace these codes but to *combine* them with
the bit-to-TSV assignment: encoders designed for 2-D wires often park bits
near logical 0, which is the wrong polarity for TSVs (small depletion
regions, large capacitances); swapping XOR for XNOR inside the coder
recovers the MOS benefit for free.

``gray``
    Binary/Gray conversion, including the negated (XNOR) variant.
``correlator``
    XOR correlator/decorrelator against the previous same-channel sample,
    including the XNOR variant and multi-channel phasing.
``businvert``
    Bus-invert and the coupling-driven invert code of the paper's ref [24].
"""

from repro.coding.correlator import correlate_words, decorrelate_words
from repro.coding.gray import gray_decode_words, gray_encode_words
from repro.coding.businvert import (
    bus_invert_decode,
    bus_invert_encode,
    coupling_invert_decode,
    coupling_invert_encode,
)

__all__ = [
    "correlate_words",
    "decorrelate_words",
    "gray_decode_words",
    "gray_encode_words",
    "bus_invert_decode",
    "bus_invert_encode",
    "coupling_invert_decode",
    "coupling_invert_encode",
]
