"""Bus-invert and coupling-driven invert encoding (paper's ref [24]).

Both codes add one *invert flag* line to a ``width``-bit bus and decide, per
transmitted word, whether sending the complement is cheaper than sending the
word:

* **Bus-invert** (Stan/Burleson) minimizes *self* transitions: invert when
  the Hamming distance to the previously transmitted word exceeds half the
  bus width.
* **Coupling-driven invert** (Palesi et al., the code used in the paper's
  Sec. 7 NoC experiment) minimizes a *coupling* cost on a planar bus, where
  adjacent wires toggling in opposite directions cost the most. It is
  "derived for the physical structure of metal-wires, and thus
  intrinsically not suitable for TSVs" — which is exactly why the paper
  re-optimizes the bit-to-TSV assignment *after* this encoder.

Encoders return ``(coded_words, flags)``; the flag is transmitted on its own
line and is needed for decoding. The greedy per-word decision uses the
previously *transmitted* (possibly inverted) word as reference, as in the
original schemes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Widest word the int64 codecs support: bit ``width`` must still be
#: addressable (the invert codes put a flag there) and ``1 << width``
#: must not overflow a signed 64-bit transport word.
MAX_WORD_WIDTH = 62


def _check(words: np.ndarray, width: int) -> np.ndarray:
    if not 1 <= width <= MAX_WORD_WIDTH:
        raise ValueError(
            f"width must be in 1..{MAX_WORD_WIDTH} (int64 word transport), "
            f"got {width}"
        )
    words = np.asarray(words)
    if words.ndim != 1:
        raise ValueError("word stream must be 1-D")
    if not np.issubdtype(words.dtype, np.integer):
        raise ValueError("word stream must be integer")
    if ((words < 0) | (words >= (1 << width))).any():
        raise ValueError(f"words outside unsigned range for width {width}")
    return words.astype(np.int64)


#: SWAR popcount constants (Hacker's Delight, fig. 5-2).
_POP_M1 = np.uint64(0x5555555555555555)
_POP_M2 = np.uint64(0x3333333333333333)
_POP_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_POP_H01 = np.uint64(0x0101010101010101)


def _popcount(values: np.ndarray | int) -> np.ndarray | int:
    """Number of set bits, exact for any 64-bit word (vectorized SWAR).

    A fixed five-step parallel bit count — the batch codec kernels call
    this per chunk on wide buses, where the old shift-until-zero loop
    cost one pass per occupied bit.
    """
    v = np.asarray(values, dtype=np.uint64)
    v = v - ((v >> np.uint64(1)) & _POP_M1)
    v = (v & _POP_M2) + ((v >> np.uint64(2)) & _POP_M2)
    v = (v + (v >> np.uint64(4))) & _POP_M4
    # The fold multiply wraps modulo 2^64 by design; the count lands in
    # the top byte.
    with np.errstate(over="ignore"):
        count = (v * _POP_H01) >> np.uint64(56)
    if count.ndim == 0:
        return int(count)
    return count.astype(np.int64)


def bus_invert_encode(words: np.ndarray, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Classic bus-invert: minimize Hamming distance to the previous word."""
    words = _check(words, width)
    mask = (1 << width) - 1
    coded = np.empty_like(words)
    flags = np.zeros(len(words), dtype=np.uint8)
    previous = 0
    for t, word in enumerate(words):
        distance = _popcount(np.int64(previous ^ word))
        # Integer tie-exact form of ``distance > width / 2``.
        if 2 * distance > width:
            coded[t] = word ^ mask
            flags[t] = 1
        else:
            coded[t] = word
        previous = int(coded[t])
    return coded, flags


def bus_invert_decode(
    coded: np.ndarray, flags: np.ndarray, width: int
) -> np.ndarray:
    """Inverse of :func:`bus_invert_encode`."""
    coded = _check(coded, width)
    flags = np.asarray(flags)
    if flags.shape != coded.shape:
        raise ValueError("flags must align with the coded words")
    mask = (1 << width) - 1
    return np.where(flags.astype(bool), coded ^ mask, coded)


def coupling_transition_cost(previous: int, current: int, width: int) -> int:
    """Coupling cost of one bus transition on a planar ``width``-bit link.

    For every adjacent wire pair the cost follows the standard crosstalk
    classes: both wires toggling in opposite directions costs 2, exactly one
    wire toggling next to a quiet wire costs 1, equal-direction toggling and
    quiet pairs cost 0.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    cost = 0
    for i in range(width - 1):
        a_prev, a_cur = (previous >> i) & 1, (current >> i) & 1
        b_prev, b_cur = (previous >> (i + 1)) & 1, (current >> (i + 1)) & 1
        da, db = a_cur - a_prev, b_cur - b_prev
        if da and db:
            cost += 2 if da != db else 0
        elif da or db:
            cost += 1
    return cost


def coupling_transition_costs(
    previous: np.ndarray, current: np.ndarray, width: int
) -> np.ndarray:
    """Vectorized :func:`coupling_transition_cost` over aligned bus states.

    Classifies every adjacent wire pair of every transition with word-level
    bit tricks instead of a per-wire loop: with ``rising``/``falling`` the
    per-wire toggle directions, bit ``i`` of
    ``(rising & (falling >> 1)) | (falling & (rising >> 1))`` marks an
    opposite-direction pair (cost 2) and bit ``i`` of
    ``toggled ^ (toggled >> 1)`` marks a lone toggle next to a quiet wire
    (cost 1). Exact integer arithmetic throughout; this is the wide-bus
    batch path of the streaming coupling-invert codec, where the
    ``(2^lines)^2`` cost table would not fit.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    p = np.asarray(previous, dtype=np.int64)
    c = np.asarray(current, dtype=np.int64)
    pair_mask = (1 << (width - 1)) - 1
    rising = c & ~p
    falling = p & ~c
    toggled = p ^ c
    opposite = ((rising & (falling >> 1)) | (falling & (rising >> 1))) & pair_mask
    lone = (toggled ^ (toggled >> 1)) & pair_mask
    return 2 * _popcount(opposite) + _popcount(lone)


def coupling_invert_encode(
    words: np.ndarray, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Coupling-driven invert: minimize the planar coupling cost per word.

    Per word the encoder evaluates :func:`coupling_transition_cost` for the
    plain and the complemented candidate (including the flag wire, adjacent
    to the MSB, as the original scheme does) and transmits the cheaper one.
    Ties keep the plain word.
    """
    words = _check(words, width)
    mask = (1 << width) - 1
    coded = np.empty_like(words)
    flags = np.zeros(len(words), dtype=np.uint8)
    previous = 0  # bus state including the flag as bit `width`
    for t, word in enumerate(words):
        plain = int(word)
        inverted = int(word) ^ mask
        cost_plain = coupling_transition_cost(previous, plain, width + 1)
        cost_inverted = coupling_transition_cost(
            previous, inverted | (1 << width), width + 1
        )
        if cost_inverted < cost_plain:
            coded[t] = inverted
            flags[t] = 1
            previous = inverted | (1 << width)
        else:
            coded[t] = plain
            previous = plain
    return coded, flags


def coupling_invert_decode(
    coded: np.ndarray, flags: np.ndarray, width: int
) -> np.ndarray:
    """Inverse of :func:`coupling_invert_encode` (same as bus-invert)."""
    return bus_invert_decode(coded, flags, width)


def coded_bit_stream(
    coded: np.ndarray, flags: np.ndarray, width: int
) -> np.ndarray:
    """Physical bit stream of an invert-coded link: data lines plus flag.

    Returns a ``(samples, width + 1)`` array with the flag on the last
    (MSB-adjacent) line, matching the cost model of the encoder.
    """
    from repro.datagen.util import words_to_bits

    coded = _check(coded, width)
    flags = np.asarray(flags, dtype=np.uint8)
    if flags.shape != coded.shape:
        raise ValueError("flags must align with the coded words")
    bits = words_to_bits(coded, width)
    return np.concatenate([bits, flags[:, None]], axis=1)
