"""Temporal XOR correlator / decorrelator (paper Sec. 7, RGB experiment).

Multiplexing Bayer colours over one link destroys the pixel-to-pixel
temporal correlation: consecutive words belong to different colour planes.
The correlator of the paper (after [3]) restores exploitable structure: each
new R, G or B value is bitwise XORed with the *previous value of the same
colour* before transmission. Because consecutive same-colour samples are
highly correlated, the XOR results have MSBs nearly stable at 0 — low
switching, and (after the paper's XNOR trick, ``negated=True``) parked at
logical 1 for the MOS benefit.

``n_channels`` selects the mux phase: 1 for a plain stream, 4 for R/G1/G2/B,
3 for x/y/z sensor axes, and so on.
"""

from __future__ import annotations

import numpy as np

#: Widest word the int64 codecs support: bit ``width`` must still be
#: addressable (the invert codes put a flag there) and ``1 << width``
#: must not overflow a signed 64-bit transport word.
MAX_WORD_WIDTH = 62


def _check(words: np.ndarray, width: int, n_channels: int) -> np.ndarray:
    if not 1 <= width <= MAX_WORD_WIDTH:
        raise ValueError(
            f"width must be in 1..{MAX_WORD_WIDTH} (int64 word transport), "
            f"got {width}"
        )
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")
    words = np.asarray(words)
    if words.ndim != 1:
        raise ValueError("word stream must be 1-D")
    if not np.issubdtype(words.dtype, np.integer):
        raise ValueError("word stream must be integer")
    if ((words < 0) | (words >= (1 << width))).any():
        raise ValueError(f"words outside unsigned range for width {width}")
    return words.astype(np.int64)


def correlate_words(
    words: np.ndarray,
    width: int,
    n_channels: int = 1,
    negated: bool = False,
) -> np.ndarray:
    """XOR each word with the previous word of the same channel.

    The first sample of each channel passes through unchanged (there is no
    predecessor). ``negated=True`` swaps the XORs for XNORs — same
    switching, complemented polarity (Sec. 6/7).
    """
    words = _check(words, width, n_channels)
    out = words.copy()
    out[n_channels:] = words[n_channels:] ^ words[:-n_channels]
    if negated:
        mask = (1 << width) - 1
        out[n_channels:] ^= mask
    return out


def decorrelate_words(
    coded: np.ndarray,
    width: int,
    n_channels: int = 1,
    negated: bool = False,
) -> np.ndarray:
    """Inverse of :func:`correlate_words` (running same-channel XOR)."""
    coded = _check(coded, width, n_channels)
    out = coded.copy()
    if negated:
        mask = (1 << width) - 1
        out[n_channels:] ^= mask
    for t in range(n_channels, len(out)):
        out[t] ^= out[t - n_channels]
    return out
