"""Local bit-to-pad routing model for the Sec. 3 overhead analysis.

Setting: the ``n`` bits of a bus arrive at the TSV array on a tight metal
bus (wire pitch well below a micron in the paper's 40 nm node), and local
wires fan out from the bus terminals to the TSV landing pads. Choosing a
different bit-to-TSV assignment permutes which bus terminal connects to
which pad, changing each wire's (Manhattan) length by at most a few microns
— tiny against the fixed part of the path (driver, global wire, the 50 um
TSV itself). Keep-out zones mean no other layout is displaced.

The paper enumerates all assignments of a 3x3 array and reports the
worst-case path-parasitic increase (0.4 %), the mean (<0.2 %) and the
standard deviation (<0.1 %) relative to the wire-length-minimizing
assignment. We compute the same three numbers *exactly* without
enumeration: the total wire parasitic is a linear permutation statistic
``T(pi) = sum_k a[k, pi(k)]``, whose mean and variance over the symmetric
group have closed forms, and whose extremes are linear assignment problems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry
from repro.tsv.matrices import total_capacitance
from repro.tsv.rlc import tsv_resistance


def permutation_statistic_moments(a: np.ndarray) -> tuple[float, float]:
    """Exact mean and variance of ``T(pi) = sum_k a[k, pi(k)]`` over all
    permutations ``pi`` drawn uniformly from the symmetric group.

    ``E[T] = n * mean(a)`` and
    ``Var[T] = (1 / (n - 1)) * sum((a - row_mean - col_mean + mean)^2)``
    — the classical result for linear permutation statistics.
    """
    a = np.asarray(a, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("cost matrix must be square")
    if n < 2:
        return float(a.sum()), 0.0
    mean = a.mean()
    row_means = a.mean(axis=1, keepdims=True)
    col_means = a.mean(axis=0, keepdims=True)
    centered = a - row_means - col_means + mean
    return float(n * mean), float(np.sum(centered**2) / (n - 1))


@dataclass(frozen=True)
class RoutingOverhead:
    """Parasitic-increase statistics over all assignments (Sec. 3 metrics).

    All three values are relative to the total path parasitics of the
    wire-length-minimizing assignment: ``worst_case`` corresponds to the
    paper's 0.4 %, ``mean`` to <0.2 % and ``std`` to <0.1 %.
    """

    worst_case: float
    mean: float
    std: float


class LocalRoutingModel:
    """Geometry + parasitics of the local bus-to-pad fan-out wiring.

    Parameters
    ----------
    geometry:
        The TSV array.
    bus_pitch:
        Wire-to-wire pitch of the arriving signal bus [m] (40 nm-node
        default: 0.4 um).
    standoff:
        Distance between the bus terminals and the nearest array row [m].
    wire_resistance_per_meter / wire_capacitance_per_meter:
        Local metal parasitics (defaults typical for an intermediate 40 nm
        metal: ~2 Ohm/um and ~0.2 fF/um).
    driver_resistance:
        Fixed source resistance in the path [Ohm].
    global_wire_length:
        Assignment-independent net length upstream of the local fan-out
        [m]; part of the fixed path parasitics the paper normalizes
        against.
    """

    def __init__(
        self,
        geometry: TSVArrayGeometry,
        bus_pitch: float = 0.4e-6,
        standoff: float = 4.0e-6,
        wire_resistance_per_meter: float = 2.0e6,
        wire_capacitance_per_meter: float = 2.0e-10,
        driver_resistance: float = 1.5e3,
        global_wire_length: float = 40.0e-6,
        extractor: Optional[CapacitanceExtractor] = None,
    ) -> None:
        if bus_pitch <= 0.0 or standoff < 0.0:
            raise ValueError("bus_pitch must be positive, standoff >= 0")
        if global_wire_length < 0.0:
            raise ValueError("global_wire_length must be >= 0")
        self.geometry = geometry
        self.bus_pitch = bus_pitch
        self.standoff = standoff
        self.wire_resistance_per_meter = wire_resistance_per_meter
        self.wire_capacitance_per_meter = wire_capacitance_per_meter
        self.driver_resistance = driver_resistance
        self.global_wire_length = global_wire_length
        if extractor is None:
            extractor = CapacitanceExtractor(geometry, method="compact")
        self._extractor = extractor

    # -- geometry --------------------------------------------------------------

    def pad_positions(self) -> np.ndarray:
        """TSV landing-pad coordinates (= TSV centres), shape (n, 2)."""
        return self.geometry.positions()

    def bus_terminal_positions(self) -> np.ndarray:
        """Bus terminal coordinates: a tight row centred under the array."""
        n = self.geometry.n_tsvs
        pads = self.pad_positions()
        center_x = pads[:, 0].mean()
        xs = center_x + (np.arange(n) - (n - 1) / 2.0) * self.bus_pitch
        y = pads[:, 1].min() - self.standoff
        return np.column_stack((xs, np.full(n, y)))

    def wire_length_matrix(self) -> np.ndarray:
        """Manhattan length [m] from bus terminal k to TSV pad j."""
        pads = self.pad_positions()
        terminals = self.bus_terminal_positions()
        return (
            np.abs(terminals[:, None, 0] - pads[None, :, 0])
            + np.abs(terminals[:, None, 1] - pads[None, :, 1])
        )

    # -- parasitics ------------------------------------------------------------

    def wire_parasitic_matrix(self) -> np.ndarray:
        """Per-connection parasitic score of the local wire [s].

        An RC-product style figure: wire capacitance weighted by the
        upstream (driver) resistance plus wire resistance weighted by the
        downstream (TSV) capacitance — the assignment-dependent part of the
        path's Elmore delay / energy.
        """
        lengths = self.wire_length_matrix()
        cap_totals = total_capacitance(self._extractor.extract())
        wire_c = lengths * self.wire_capacitance_per_meter
        wire_r = lengths * self.wire_resistance_per_meter
        return (
            self.driver_resistance * wire_c
            + wire_r * cap_totals[None, :]
        )

    def fixed_path_parasitic(self) -> float:
        """Assignment-independent parasitic score of one full path [s]."""
        cap_totals = total_capacitance(self._extractor.extract())
        mean_cap = float(cap_totals.mean())
        r_tsv = tsv_resistance(self.geometry)
        c_global = self.global_wire_length * self.wire_capacitance_per_meter
        r_global = self.global_wire_length * self.wire_resistance_per_meter
        return (
            self.driver_resistance * (mean_cap + c_global)
            + r_global * (mean_cap + c_global / 2.0)
            + r_tsv * mean_cap / 2.0
        )

    # -- Sec. 3 analysis ---------------------------------------------------------

    def overhead(self) -> RoutingOverhead:
        """Exact worst/mean/std parasitic increase over all assignments."""
        n = self.geometry.n_tsvs
        scores = self.wire_parasitic_matrix()
        rows, cols = linear_sum_assignment(scores)
        best = float(scores[rows, cols].sum())
        rows, cols = linear_sum_assignment(-scores)
        worst = float(scores[rows, cols].sum())
        mean, variance = permutation_statistic_moments(scores)
        baseline = best + n * self.fixed_path_parasitic()
        return RoutingOverhead(
            worst_case=(worst - best) / baseline,
            mean=(mean - best) / baseline,
            std=float(np.sqrt(variance)) / baseline,
        )
