"""Local-routing overhead analysis (paper Sec. 3).

The assignment technique's only cost is a slight change in the local metal
wiring between the arriving signal bus and the TSV landing pads. ``local``
models that wiring and reproduces the paper's claim that the effect on the
path parasitics is negligible (worst case 0.4 %, mean below 0.2 %).
"""

from repro.routing.local import LocalRoutingModel, RoutingOverhead

__all__ = ["LocalRoutingModel", "RoutingOverhead"]
