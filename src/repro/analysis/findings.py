"""The shared finding record every linter rule reports.

A :class:`Finding` is one rule violation at one source location. Rules only
*create* findings; rendering (text, JSON, SARIF, GitHub workflow commands)
and exit-code policy live here and in :mod:`repro.analysis.linter`, so all
rules behave identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        File the violation was found in (as given to the linter).
    line / column:
        1-based line and 0-based column of the offending node.
    rule:
        Rule code, e.g. ``"REP001"``.
    message:
        Human-readable description of what is wrong and what to do instead.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: REPxxx message`` — the classic linter line."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"


def render_text(findings: Iterable[Finding]) -> str:
    """Render findings one per line, sorted by location."""
    return "\n".join(f.render() for f in sorted(findings))


def render_json(findings: Iterable[Finding]) -> str:
    """Render findings as a JSON array (for CI annotation tooling)."""
    return json.dumps([asdict(f) for f in sorted(findings)], indent=2)


def summarize(findings: List[Finding]) -> str:
    """One-line tally: ``3 findings (REP001 x2, REP005 x1)``."""
    if not findings:
        return "no findings"
    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    parts = ", ".join(f"{rule} x{n}" for rule, n in sorted(counts.items()))
    noun = "finding" if len(findings) == 1 else "findings"
    return f"{len(findings)} {noun} ({parts})"


def rule_catalog() -> Dict[str, str]:
    """All known rule codes mapped to their one-line summaries.

    Combines the shallow AST rules (``REP001``..) with the deep dataflow
    family (``REP101``..), the concurrency family (``REP201``..) and the
    exactness/determinism family (``REP301``..). Imported lazily —
    :mod:`repro.analysis.linter` and :mod:`repro.analysis.flow` both
    import this module.
    """
    from repro.analysis.concurrency import THREAD_RULES
    from repro.analysis.exactness import EXACT_RULES
    from repro.analysis.flow import DEEP_RULES
    from repro.analysis.linter import ALL_RULES

    catalog = {rule.code: rule.summary for rule in ALL_RULES}
    catalog.update(DEEP_RULES)
    catalog.update(THREAD_RULES)
    catalog.update(EXACT_RULES)
    return catalog


def render_sarif(
    findings: Iterable[Finding],
    rules: Optional[Mapping[str, str]] = None,
) -> str:
    """Render findings as a SARIF 2.1.0 log (GitHub code scanning).

    Every rule that appears in ``rules`` (default: the full catalogue) is
    declared in the tool driver, so code-scanning shows rule metadata even
    for rules with no current findings.
    """
    findings = sorted(findings)
    if rules is None:
        rules = rule_catalog()
    rules = dict(rules)
    for finding in findings:  # never emit a result with an undeclared rule
        rules.setdefault(finding.rule, finding.rule)
    rule_ids = sorted(rules)
    index = {rule_id: k for k, rule_id in enumerate(rule_ids)}
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-tsv-lint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": rules[rule_id]},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "ruleIndex": index[finding.rule],
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": finding.path.replace("\\", "/"),
                                        "uriBaseId": "SRCROOT",
                                    },
                                    "region": {
                                        "startLine": finding.line,
                                        "startColumn": finding.column + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for finding in findings
                ],
            }
        ],
    }
    return json.dumps(log, indent=2)


def render_github(findings: Iterable[Finding]) -> str:
    """Render findings as GitHub Actions workflow commands.

    One ``::error`` line per finding; GitHub turns these into inline PR
    annotations when printed from a workflow step. Newlines and the other
    characters meaningful to the command parser are escaped per the
    workflow-command spec.
    """

    def escape(value: str, *, property_value: bool = False) -> str:
        value = (
            value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )
        if property_value:
            value = value.replace(":", "%3A").replace(",", "%2C")
        return value

    lines = []
    for finding in sorted(findings):
        location = (
            f"file={escape(finding.path, property_value=True)},"
            f"line={finding.line},"
            f"col={finding.column + 1},"
            f"title={escape(finding.rule, property_value=True)}"
        )
        lines.append(f"::error {location}::{escape(finding.message)}")
    return "\n".join(lines)
