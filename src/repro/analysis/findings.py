"""The shared finding record every linter rule reports.

A :class:`Finding` is one rule violation at one source location. Rules only
*create* findings; rendering (text or JSON) and exit-code policy live here
and in :mod:`repro.analysis.linter`, so all rules behave identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        File the violation was found in (as given to the linter).
    line / column:
        1-based line and 0-based column of the offending node.
    rule:
        Rule code, e.g. ``"REP001"``.
    message:
        Human-readable description of what is wrong and what to do instead.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: REPxxx message`` — the classic linter line."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"


def render_text(findings: Iterable[Finding]) -> str:
    """Render findings one per line, sorted by location."""
    return "\n".join(f.render() for f in sorted(findings))


def render_json(findings: Iterable[Finding]) -> str:
    """Render findings as a JSON array (for CI annotation tooling)."""
    return json.dumps([asdict(f) for f in sorted(findings)], indent=2)


def summarize(findings: List[Finding]) -> str:
    """One-line tally: ``3 findings (REP001 x2, REP005 x1)``."""
    if not findings:
        return "no findings"
    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    parts = ", ".join(f"{rule} x{n}" for rule, n in sorted(counts.items()))
    noun = "finding" if len(findings) == 1 else "findings"
    return f"{len(findings)} {noun} ({parts})"
