"""Static analysis and runtime contracts for the reproduction.

Two halves:

* :mod:`repro.analysis.linter` — an AST linter with repo-specific rules
  (``REP001`` .. ``REP005``): RNG reproducibility, vectorization,
  deprecated NumPy API, float equality, parameter mutation. Run it with
  ``repro-tsv lint`` or ``python -m repro.analysis``. With ``--threads``
  the concurrency pass of :mod:`repro.analysis.concurrency` adds the
  ``REP201`` .. ``REP206`` family (locksets, lock-order graphs,
  thread-escape inference). With ``--exact`` the exactness/determinism
  pass of :mod:`repro.analysis.exactness` adds ``REP301`` .. ``REP306``
  (exact-int contamination, unordered iteration, RNG sharing, float
  reduction order, wall-clock leakage, float tie-breaks). With ``--deep``
  all three deep passes — shape/unit inference of
  :mod:`repro.analysis.flow` (``REP101`` .. ``REP104``), concurrency and
  exactness — run together.
* :mod:`repro.analysis.contracts` — validators for the paper's physical
  invariants (SPICE-form ``C``, Eq. 5 signed permutations, probability
  ranges, ``T_s``/``T_c`` consistency), enforced at the core boundaries
  when ``REPRO_CONTRACTS=1``.

See ``docs/static_analysis.md`` for the full rule and contract catalogue.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.analysis.contracts import (
    ContractViolation,
    check_capacitance_matrix,
    check_enabled,
    check_mna_system,
    check_probabilities,
    check_signed_permutation,
    check_switching_matrix,
    contract,
    contracts_enabled,
    contracts_override,
)
from repro.analysis.findings import (
    Finding,
    render_github,
    render_json,
    render_sarif,
    render_text,
    summarize,
)
from repro.analysis.linter import ALL_RULES, lint_file, lint_paths, lint_source

__all__ = [
    "ALL_RULES",
    "ContractViolation",
    "Finding",
    "LINT_FORMATS",
    "check_capacitance_matrix",
    "check_enabled",
    "check_mna_system",
    "check_probabilities",
    "check_signed_permutation",
    "check_switching_matrix",
    "contract",
    "contracts_enabled",
    "contracts_override",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_lint",
]

#: Output formats ``run_lint`` understands (and the CLI exposes).
LINT_FORMATS = ("text", "json", "sarif", "github")


def _excluded(findings, exclude):
    """Drop findings whose path lies under any entry of ``exclude``."""
    from pathlib import Path

    prefixes = [Path(entry).resolve() for entry in exclude]

    def keep(finding):
        path = Path(finding.path).resolve()
        for prefix in prefixes:
            try:
                path.relative_to(prefix)
            except ValueError:
                continue
            return False
        return True

    return [f for f in findings if keep(f)]


def run_lint(
    paths: Sequence[str],
    output_format: str = "text",
    stream=None,
    deep: bool = False,
    threads: bool = False,
    exact: bool = False,
    exclude: Sequence[str] = (),
) -> int:
    """Lint ``paths`` and print findings; return a CI-friendly exit code.

    ``0`` when clean, ``1`` when findings exist, ``2`` on usage errors
    (e.g. a path that does not exist). With ``threads=True`` the
    concurrency pass (``REP201``..``REP206``) runs on top of the shallow
    AST rules; ``exact=True`` runs the exactness/determinism pass
    (``REP301``..``REP306``); ``deep=True`` adds all three deep passes,
    including the interprocedural shape/unit pass
    (``REP101``..``REP104``). Findings under any path in ``exclude`` are
    dropped — how CI lints ``tests/`` while skipping the
    deliberately-bad fixture corpora.
    """
    stream = sys.stdout if stream is None else stream
    try:
        findings = lint_paths(paths)
        if deep:
            from repro.analysis.flow import analyze_paths

            findings = sorted(set(findings) | set(analyze_paths(paths)))
        if deep or threads:
            from repro.analysis.concurrency import analyze_threads

            findings = sorted(set(findings) | set(analyze_threads(paths)))
        if deep or exact:
            from repro.analysis.exactness import analyze_exactness

            findings = sorted(set(findings) | set(analyze_exactness(paths)))
        if exclude:
            findings = _excluded(findings, exclude)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if output_format == "json":
        print(render_json(findings), file=stream)
    elif output_format == "sarif":
        print(render_sarif(findings), file=stream)
    elif output_format == "github":
        if findings:
            print(render_github(findings), file=stream)
        print(f"# {summarize(findings)}", file=stream)
    else:
        if findings:
            print(render_text(findings), file=stream)
        print(f"# {summarize(findings)}", file=stream)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repo-specific physics/numerics linter (REP001..REP007; "
            "--threads adds REP201..REP206, --exact adds REP301..REP306, "
            "--deep adds every deep pass)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", default="text", choices=LINT_FORMATS,
        help="output format",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help=(
            "run the interprocedural shape/unit, concurrency and "
            "exactness passes too"
        ),
    )
    parser.add_argument(
        "--threads", action="store_true",
        help="run the concurrency-safety pass (REP201..REP206)",
    )
    parser.add_argument(
        "--exact", action="store_true",
        help="run the exactness/determinism pass (REP301..REP306)",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="PATH",
        help="drop findings under this path (repeatable)",
    )
    args = parser.parse_args(argv)
    return run_lint(
        args.paths,
        output_format=args.format,
        deep=args.deep,
        threads=args.threads,
        exact=args.exact,
        exclude=args.exclude,
    )
