"""Physical-unit algebra and the abstract value of the deep-lint pass.

Units are SI dimension vectors ``(kg, m, s, A)``; the quantities the
paper manipulates all live in this space — farads for capacitance, volts
for swings, joules/watts for power, seconds/hertz for timing, and the
dimensionless switching statistics and probabilities. Multiplication and
division add and subtract exponent vectors, so the analyzer can follow
``P = C · V² · f`` from farads to watts without a table of special cases.

On top of the dimension vector, :class:`AbstractValue` carries the facts
the REP1xx rules need:

* ``shape`` — symbolic shape (:mod:`repro.analysis.shapes`);
* ``unit`` — dimension vector, or ``None`` when unknown;
* ``form`` — capacitance-matrix convention (``"spice"`` / ``"maxwell"``);
* ``prob`` — ``True`` when provably in ``[0, 1]`` (a probability),
  ``False`` when *derived from* probabilities but possibly escaped the
  interval (``p + q``, ``2 * p``, …), ``None`` when not probability-like;
* ``rng`` — numeric bounds when statically known (literals and their
  arithmetic), used for the Eq. 9 ``[0, 1]`` bound check;
* ``lit`` — True for bare numeric literals, which adapt to any unit
  (``x + 1.0`` is fine whatever ``x``'s unit is);
* ``obj`` — opaque object type (``"BitStatistics"``, …) for the library's
  dataclasses, with members resolved through the signature registry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.analysis.shapes import Shape, join_shapes

__all__ = [
    "UNKNOWN",
    "AbstractValue",
    "UNIT_NAMES",
    "div_units",
    "format_unit",
    "join_values",
    "mul_units",
    "parse_unit",
    "pow_units",
    "scalar_literal",
]

#: SI dimension vector: exponents of (kg, m, s, A).
Unit = Tuple[int, int, int, int]

DIMENSIONLESS: Unit = (0, 0, 0, 0)

#: Every unit the spec mini-language accepts.
UNIT_NAMES = {
    "dimensionless": DIMENSIONLESS,
    "bit": DIMENSIONLESS,
    "probability": DIMENSIONLESS,
    "farad": (-1, -2, 4, 2),
    "volt": (1, 2, -3, -1),
    "joule": (1, 2, -2, 0),
    "watt": (1, 2, -3, 0),
    "second": (0, 0, 1, 0),
    "hertz": (0, 0, -1, 0),
    "meter": (0, 1, 0, 0),
    "ohm": (1, 2, -3, -2),
    "henry": (1, 2, -2, -2),
    "ampere": (0, 0, 0, 1),
    "coulomb": (0, 0, 1, 1),
}

_CANONICAL = {
    vec: name
    for name, vec in reversed(list(UNIT_NAMES.items()))
    if name not in ("bit", "probability")
}


def parse_unit(name: str) -> Unit:
    try:
        return UNIT_NAMES[name]
    except KeyError:
        raise ValueError(f"unknown unit {name!r}") from None


def format_unit(unit: Optional[Unit]) -> str:
    if unit is None:
        return "?"
    if unit in _CANONICAL:
        return _CANONICAL[unit]
    bases = ("kg", "m", "s", "A")
    parts = [f"{b}^{e}" for b, e in zip(bases, unit) if e]
    return "·".join(parts) if parts else "dimensionless"


def mul_units(a: Optional[Unit], b: Optional[Unit]) -> Optional[Unit]:
    if a is None or b is None:
        return None
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3])


def div_units(a: Optional[Unit], b: Optional[Unit]) -> Optional[Unit]:
    if a is None or b is None:
        return None
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3])


def pow_units(a: Optional[Unit], k: int) -> Optional[Unit]:
    if a is None:
        return None
    return (a[0] * k, a[1] * k, a[2] * k, a[3] * k)


@dataclass(frozen=True)
class AbstractValue:
    """Everything the flow pass knows about one expression's value."""

    shape: Optional[Shape] = None
    unit: Optional[Unit] = None
    form: Optional[str] = None
    prob: Optional[bool] = None
    rng: Optional[Tuple[float, float]] = None
    lit: bool = False
    obj: Optional[str] = None

    def but(self, **changes) -> "AbstractValue":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def is_unknown(self) -> bool:
        return self == UNKNOWN

    def describe(self) -> str:
        """Short human-readable type for finding messages."""
        from repro.analysis.shapes import format_shape

        if self.obj is not None:
            return self.obj
        parts = []
        if self.shape is not None:
            parts.append(format_shape(self.shape))
        if self.unit is not None:
            parts.append("probability" if self.prob else format_unit(self.unit))
        if self.form is not None:
            parts.append(f"{self.form}-form")
        if not parts and self.rng is not None:
            parts.append(f"value in [{self.rng[0]:g}, {self.rng[1]:g}]")
        return " ".join(parts) if parts else "unknown"


UNKNOWN = AbstractValue()


def scalar_literal(value: float) -> AbstractValue:
    """Abstract value of a numeric literal: unitless, exactly bounded."""
    v = float(value)
    return AbstractValue(
        shape=(), unit=DIMENSIONLESS, rng=(v, v), lit=True,
        prob=True if 0.0 <= v <= 1.0 else None,
    )


def join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two facts (if/else merge, multiple returns)."""
    if a == b:
        return a
    if a.obj is not None or b.obj is not None:
        return UNKNOWN if a.obj != b.obj else AbstractValue(obj=a.obj)
    rng = None
    if a.rng is not None and b.rng is not None:
        rng = (min(a.rng[0], b.rng[0]), max(a.rng[1], b.rng[1]))
    return AbstractValue(
        shape=join_shapes(a.shape, b.shape),
        unit=a.unit if a.unit == b.unit else None,
        form=a.form if a.form == b.form else None,
        prob=a.prob if a.prob == b.prob else None,
        rng=rng,
        lit=a.lit and b.lit,
    )
