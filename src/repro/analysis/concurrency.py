"""Interprocedural concurrency-safety inference (the ``--threads`` pass).

A lockset/thread-escape analysis over the package's ASTs, built on the
same module/registry machinery as :mod:`repro.analysis.flow`. For every
function it tracks

* the **lockset** held at each statement — ``with self._lock:`` blocks,
  explicit ``.acquire()``/``.release()`` pairs, locks resolved through
  the ``@guards`` annotations of the signature registry;
* a **thread-escape** set — which classes and functions are reachable
  from more than one thread, seeded by ``threading.Thread(target=...)``,
  ``executor.submit(...)``, ``loop.run_in_executor(...)`` and the
  ``@threads`` entries of ``REPRO_SIGNATURES``;
* a global **lock-order graph** — an edge ``A -> B`` whenever lock ``B``
  is acquired (directly or through a callee's summary, across module
  boundaries) while ``A`` is held.

The rule family (suppress with ``# repro: noqa[REP20x]``):

``REP201``
    Write to a ``@guards``-annotated thread-shared attribute without its
    guard held (constructor initialization is exempt).
``REP202``
    Inconsistent lockset: a guarded field read bare — either annotated
    via ``@guards``, or inferred (a field of a thread-escaping class
    accessed under one lock on at least two sites and bare on another).
``REP203``
    Lock-order cycle: the global lock-order graph contains a cycle, so
    two threads taking the locks in opposite orders can deadlock. Every
    edge participating in a cycle is reported at its acquisition site.
``REP204``
    Blocking call while holding a lock: ``time.sleep``, ``.join()`` /
    ``.get()`` / ``.result()`` / ``.wait()`` without a timeout, socket
    ``recv``/``accept``, anything named by ``@blocking`` — directly or
    through the may-block closure of the call graph.
``REP205``
    Non-atomic check-then-act: a guarded field read without its guard
    and then written under the guard in the same function with no
    guarded re-check in between (the double-checked-init bug).
``REP206``
    Thread started but never joined: a ``threading.Thread`` handle
    (local or ``self.*`` field) that is ``.start()``-ed but has no
    ``.join`` reference anywhere in its owning scope.

Annotation mini-language (module ``REPRO_SIGNATURES`` keys):

.. code-block:: python

    REPRO_SIGNATURES = {
        "@guards": ["ServeEngine._queue guarded_by _lock",
                    "_plan guarded_by _plan_lock"],     # module global
        "@threads": ["ServeEngine._run_batch", "LinkSession"],
        "@blocking": ["fault_point"],
        ...
    }

Run with ``repro-tsv lint --threads`` (also folded into ``--deep``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.findings import Finding
from repro.analysis.flow import (
    FunctionInfo,
    ModuleInfo,
    _load_module,
    _static_signatures,
)
from repro.analysis.linter import _noqa_lines, iter_python_files
from repro.analysis.registry import SignatureRegistry, build_registry

__all__ = ["THREAD_RULES", "analyze_threads", "analyze_thread_source"]

#: The concurrency rule family (code -> one-line summary).
THREAD_RULES = {
    "REP201": "unguarded write to a thread-shared attribute",
    "REP202": "inconsistent lockset: guarded field read bare",
    "REP203": "lock-order cycle (potential deadlock)",
    "REP204": "blocking call while holding a lock",
    "REP205": "non-atomic check-then-act on a guarded field",
    "REP206": "thread started but never joined or stopped",
}

#: Constructors that create a kernel thread.
_THREAD_CTORS = frozenset({"threading.Thread", "threading.Timer"})

#: Lock constructors recognized in ``x = threading.Lock()`` pre-scans.
_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock"})

#: Attribute calls that block unconditionally.
_ALWAYS_BLOCKING_ATTRS = frozenset({"recv", "recv_into", "accept"})

#: Attribute calls that block when called with no timeout argument.
_TIMEOUT_BLOCKING_ATTRS = frozenset({"join", "get", "result", "wait"})

#: Name calls that block (canonical dotted names).
_BLOCKING_CANONICALS = frozenset({"time.sleep", "concurrent.futures.wait"})

#: Thread-handle attributes that do not leak the handle to another owner.
_THREAD_METHODS = frozenset(
    {"start", "join", "is_alive", "daemon", "name", "ident"}
)


class _Access:
    """One read/write of a tracked field at one site."""

    __slots__ = ("field", "kind", "locks", "node", "in_init")

    def __init__(
        self,
        field: str,
        kind: str,
        locks: frozenset,
        node: ast.AST,
        in_init: bool,
    ) -> None:
        self.field = field
        self.kind = kind  # "read" | "write"
        self.locks = locks
        self.node = node
        self.in_init = in_init


class _Call:
    """One call site with the lockset held when it executes."""

    __slots__ = ("resolved", "locks", "node")

    def __init__(
        self, resolved: Optional[str], locks: frozenset, node: ast.AST
    ) -> None:
        self.resolved = resolved
        self.locks = locks
        self.node = node


class _Scan:
    """Per-function facts: accesses, lock edges, calls, blocking sites."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.accesses: List[_Access] = []
        self.acquired: Set[str] = set()
        self.edges: List[Tuple[str, str, ast.AST]] = []
        self.calls: List[_Call] = []
        self.blocking: List[Tuple[ast.AST, str, frozenset]] = []
        self.direct_blocks = False


class ThreadAnalyzer:
    """Drives the concurrency pass over a set of modules."""

    def __init__(
        self, modules: Sequence[ModuleInfo], registry: SignatureRegistry
    ) -> None:
        self.modules = list(modules)
        self.registry = registry
        self.findings: List[Finding] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self.module_locks: Dict[str, Set[str]] = {}
        self.class_locks: Dict[str, Set[str]] = {}
        #: Class-body-declared attributes: state shared across instances,
        #: so constructor accesses are NOT exempt from the lock rules.
        self.class_level_fields: Dict[str, Set[str]] = {}
        #: "ClassName.method" -> list of matching fully-qualified names.
        self.member_index: Dict[str, List[str]] = {}
        self.escaped_classes: Set[str] = set()
        self.entry_functions: Set[str] = set()
        self.scans: Dict[str, _Scan] = {}
        for module in self.modules:
            self._collect_functions(module)
            self._collect_locks(module)
        self._seed_annotations()

    # -- collection -----------------------------------------------------------

    def _collect_functions(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{node.name}"
                self.functions[qualname] = FunctionInfo(qualname, node, module)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qualname = f"{module.name}.{node.name}.{item.name}"
                        info = FunctionInfo(
                            qualname, item, module, class_name=node.name
                        )
                        self.functions[qualname] = info
                        key = f"{node.name}.{item.name}"
                        self.member_index.setdefault(key, []).append(qualname)

    def _collect_locks(self, module: ModuleInfo) -> None:
        """Find ``x = threading.Lock()`` declarations (module and class)."""
        mod_locks = self.module_locks.setdefault(module.name, set())
        for node in module.tree.body:
            if self._lock_assign_name(node, module) is not None:
                mod_locks.add(self._lock_assign_name(node, module))
            elif isinstance(node, ast.ClassDef):
                attrs = self.class_locks.setdefault(node.name, set())
                fields = self.class_level_fields.setdefault(node.name, set())
                for item in node.body:
                    name = self._lock_assign_name(item, module)
                    if name is not None:
                        attrs.add(name)
                    elif isinstance(item, ast.Assign):
                        for target in item.targets:
                            if isinstance(target, ast.Name):
                                fields.add(target.id)
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        fields.add(item.target.id)
                for item in ast.walk(node):
                    if (
                        isinstance(item, ast.Assign)
                        and len(item.targets) == 1
                        and isinstance(item.targets[0], ast.Attribute)
                        and isinstance(item.targets[0].value, ast.Name)
                        and item.targets[0].value.id == "self"
                        and self._is_lock_ctor(item.value, module)
                    ):
                        attrs.add(item.targets[0].attr)

    def _lock_assign_name(
        self, node: ast.stmt, module: ModuleInfo
    ) -> Optional[str]:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and self._is_lock_ctor(node.value, module)
        ):
            return node.targets[0].id
        return None

    @staticmethod
    def _is_lock_ctor(node: ast.expr, module: ModuleInfo) -> bool:
        return (
            isinstance(node, ast.Call)
            and module.imports.canonical(node.func) in _LOCK_CTORS
        )

    def _seed_annotations(self) -> None:
        """Fold ``@guards`` lock names and ``@threads`` entries in."""
        for lock_id in self.registry.guards.values():
            owner, _, name = lock_id.rpartition(".")
            if not owner:
                continue
            head = owner.rsplit(".", 1)[-1]
            if head[:1].isupper():
                self.class_locks.setdefault(owner, set()).add(name)
            else:
                self.module_locks.setdefault(owner, set()).add(name)
        for entry in self.registry.thread_entries:
            if "." in entry:
                cls = entry.split(".")[0]
                if cls[:1].isupper():
                    self.escaped_classes.add(cls)
                for qualname in self.member_index.get(entry, []):
                    self.entry_functions.add(qualname)
            elif entry[:1].isupper():
                self.escaped_classes.add(entry)
            else:
                for qualname, info in self.functions.items():
                    if info.node.name == entry and info.class_name is None:
                        self.entry_functions.add(qualname)

    # -- call resolution -------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, module: ModuleInfo, class_name: Optional[str]
    ) -> Optional[str]:
        func = call.func
        canonical = module.imports.canonical(func)
        if canonical:
            if canonical in self.functions:
                return canonical
            local = f"{module.name}.{canonical}"
            if local in self.functions:
                return local
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" and class_name:
                qualname = f"{module.name}.{class_name}.{func.attr}"
                if qualname in self.functions:
                    return qualname
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and class_name
            ):
                attr = self.registry.member_attribute(class_name, base.attr)
                if attr is not None and attr.obj is not None:
                    candidates = self.member_index.get(
                        f"{attr.obj}.{func.attr}", []
                    )
                    if len(candidates) == 1:
                        return candidates[0]
        return None

    def resolve_escape_target(
        self, node: ast.expr, module: ModuleInfo, class_name: Optional[str]
    ) -> None:
        """Mark the target of a thread/executor hand-off as escaping."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and class_name
        ):
            self.escaped_classes.add(class_name)
            qualname = f"{module.name}.{class_name}.{node.attr}"
            if qualname in self.functions:
                self.entry_functions.add(qualname)
            return
        canonical = module.imports.canonical(node)
        if not canonical:
            return
        tail = canonical.rsplit(".", 1)[-1]
        if tail[:1].isupper():
            self.escaped_classes.add(tail)
            return
        for candidate in (canonical, f"{module.name}.{canonical}"):
            if candidate in self.functions:
                self.entry_functions.add(candidate)
                info = self.functions[candidate]
                if info.class_name is not None:
                    self.escaped_classes.add(info.class_name)
                return

    def is_blocking_name(self, canonical: str) -> bool:
        if not canonical:
            return False
        if canonical in _BLOCKING_CANONICALS:
            return True
        tail = canonical.rsplit(".", 1)[-1]
        for entry in self.registry.blocking:
            if canonical == entry or tail == entry or canonical.endswith(
                "." + entry
            ):
                return True
        return False

    def record(
        self, module: ModuleInfo, node: ast.AST, code: str, message: str
    ) -> None:
        self.findings.append(
            Finding(
                path=str(module.path),
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                rule=code,
                message=message,
            )
        )

    # -- driving ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        for qualname, info in self.functions.items():
            self.scans[qualname] = _FunctionScanner(self, info).run()
        self._refine_private_entries()
        may_block = self._may_block_closure()
        acquires = self._transitive_acquires()
        self._check_blocking(may_block)
        self._check_lock_order(acquires)
        self._check_field_discipline()
        self._check_thread_joins()
        return self._filtered()

    def _refine_private_entries(self) -> None:
        """Re-scan private helpers with the meet of their call-site locksets.

        ``RateMeter._prune`` style helpers are only ever called with the
        owner's lock held; analyzing them with an empty entry lockset
        would report their guarded-field accesses as bare. A leading
        underscore bounds the callers to the analyzed set, so the meet
        over observed call sites is a sound entry lockset.
        """
        sites: Dict[str, List[frozenset]] = {}
        for scan in self.scans.values():
            for call in scan.calls:
                if call.resolved is not None:
                    sites.setdefault(call.resolved, []).append(call.locks)
        for qualname, locksets in sites.items():
            info = self.functions.get(qualname)
            if info is None:
                continue
            name = info.node.name
            if not name.startswith("_") or name.startswith("__"):
                continue
            meet = frozenset.intersection(*locksets) if locksets else frozenset()
            if meet:
                self.scans[qualname] = _FunctionScanner(
                    self, info, entry_locks=meet
                ).run()

    def _may_block_closure(self) -> Dict[str, bool]:
        may_block = {q: s.direct_blocks for q, s in self.scans.items()}
        changed = True
        while changed:
            changed = False
            for qualname, scan in self.scans.items():
                if may_block[qualname]:
                    continue
                for call in scan.calls:
                    if call.resolved and may_block.get(call.resolved):
                        may_block[qualname] = True
                        changed = True
                        break
        return may_block

    def _transitive_acquires(self) -> Dict[str, Set[str]]:
        acquires = {q: set(s.acquired) for q, s in self.scans.items()}
        changed = True
        while changed:
            changed = False
            for qualname, scan in self.scans.items():
                for call in scan.calls:
                    if call.resolved is None:
                        continue
                    extra = acquires.get(call.resolved, set())
                    if not extra <= acquires[qualname]:
                        acquires[qualname] |= extra
                        changed = True
        return acquires

    # -- REP204 ----------------------------------------------------------------

    def _check_blocking(self, may_block: Dict[str, bool]) -> None:
        for qualname, scan in self.scans.items():
            module = scan.info.module
            for node, desc, locks in scan.blocking:
                if locks:
                    self.record(
                        module, node, "REP204",
                        f"blocking call {desc} while holding "
                        f"{self._fmt_locks(locks)}; release the lock or "
                        "add a timeout",
                    )
            seen: Set[int] = set()
            for call in scan.calls:
                if (
                    call.locks
                    and call.resolved
                    and may_block.get(call.resolved)
                    and id(call.node) not in seen
                ):
                    seen.add(id(call.node))
                    self.record(
                        module, call.node, "REP204",
                        f"call to {call.resolved} may block while holding "
                        f"{self._fmt_locks(call.locks)}; move the slow work "
                        "outside the critical section",
                    )

    @staticmethod
    def _fmt_locks(locks: frozenset) -> str:
        return ", ".join(sorted(locks))

    # -- REP203 ----------------------------------------------------------------

    def _check_lock_order(self, acquires: Dict[str, Set[str]]) -> None:
        graph: Dict[str, Set[str]] = {}
        witnesses: List[Tuple[str, str, ast.AST, ModuleInfo]] = []

        def add_edge(a: str, b: str, node: ast.AST, module: ModuleInfo) -> None:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
            witnesses.append((a, b, node, module))

        for scan in self.scans.values():
            module = scan.info.module
            for held, acq, node in scan.edges:
                add_edge(held, acq, node, module)
            for call in scan.calls:
                if call.resolved is None or not call.locks:
                    continue
                for target in acquires.get(call.resolved, ()):
                    for held in call.locks:
                        add_edge(held, target, call.node, module)

        def reaches(start: str, goal: str) -> bool:
            stack, seen = [start], set()
            while stack:
                lock = stack.pop()
                if lock == goal:
                    return True
                if lock in seen:
                    continue
                seen.add(lock)
                stack.extend(graph.get(lock, ()))
            return False

        reported: Set[Tuple[str, int]] = set()
        for a, b, node, module in witnesses:
            if a == b or reaches(b, a):
                key = (str(module.path), getattr(node, "lineno", 1))
                if key in reported:
                    continue
                reported.add(key)
                if a == b:
                    detail = f"{a} re-acquired while already held"
                else:
                    detail = (
                        f"{b} acquired while holding {a}, but the reverse "
                        "order exists elsewhere"
                    )
                self.record(
                    module, node, "REP203",
                    f"lock-order cycle: {detail}; fix a global acquisition "
                    "order",
                )

    # -- REP201 / REP202 / REP205 ---------------------------------------------

    def _check_field_discipline(self) -> None:
        inferred: Dict[str, List[Tuple[_Access, _Scan]]] = {}
        for scan in self.scans.values():
            module = scan.info.module
            guarded: Dict[str, List[_Access]] = {}
            for access in scan.accesses:
                guard = self.registry.guards.get(access.field)
                if guard is None:
                    inferred.setdefault(access.field, []).append(
                        (access, scan)
                    )
                    continue
                guarded.setdefault(access.field, []).append(access)
            for field, events in guarded.items():
                self._check_annotated_field(field, events, module)

        self._check_inferred_fields(inferred)

    def _check_annotated_field(
        self, field: str, events: List[_Access], module: ModuleInfo
    ) -> None:
        guard = self.registry.guards[field]
        owner, _, attr = field.rpartition(".")
        if attr not in self.class_level_fields.get(owner, ()):
            # Instance state: the constructor builds it before the object
            # is shared, so __init__ accesses are exempt. Class-level
            # declarations are shared across instances and stay checked.
            events = [a for a in events if not a.in_init]
        events = sorted(
            events,
            key=lambda a: (
                getattr(a.node, "lineno", 0),
                getattr(a.node, "col_offset", 0),
            ),
        )
        check_then_act: Set[int] = set()
        for i, access in enumerate(events):
            if access.kind != "read" or guard in access.locks:
                continue
            for later in events[i + 1:]:
                if guard not in later.locks:
                    continue
                if later.kind == "read":
                    break  # a guarded re-check: the classic safe pattern
                check_then_act.add(id(access.node))
                self.record(
                    module, access.node, "REP205",
                    f"check-then-act on {field}: read without {guard} here, "
                    "then written under the lock — re-check (or use "
                    "setdefault) inside the critical section",
                )
                break
        flagged_writes: Set[int] = set()
        for access in events:
            if guard in access.locks:
                continue
            if access.kind == "write":
                flagged_writes.add(id(access.node))
                self.record(
                    module, access.node, "REP201",
                    f"write to {field} without holding {guard} "
                    f"(declared guarded_by)",
                )
        for access in events:
            if (
                access.kind == "read"
                and guard not in access.locks
                and id(access.node) not in check_then_act
                and id(access.node) not in flagged_writes
            ):
                self.record(
                    module, access.node, "REP202",
                    f"read of {field} without holding {guard} "
                    f"(declared guarded_by)",
                )

    def _check_inferred_fields(
        self, inferred: Dict[str, List[Tuple[_Access, _Scan]]]
    ) -> None:
        """REP202 by inference: mostly-guarded fields of escaping classes."""
        for field, pairs in inferred.items():
            owner = field.split(".")[0]
            if owner not in self.escaped_classes:
                continue
            events = [
                (access, scan)
                for access, scan in pairs
                if not access.in_init
            ]
            lock_counts: Dict[str, int] = {}
            for access, _ in events:
                for lock in access.locks:
                    lock_counts[lock] = lock_counts.get(lock, 0) + 1
            if not lock_counts:
                continue
            lock = max(sorted(lock_counts), key=lambda k: lock_counts[k])
            if lock_counts[lock] < 2:
                continue
            for access, scan in events:
                if lock not in access.locks:
                    self.record(
                        scan.info.module, access.node, "REP202",
                        f"{field} is accessed under {lock} on "
                        f"{lock_counts[lock]} sites but bare here; guard it "
                        "or annotate the intended discipline with @guards",
                    )

    # -- REP206 ----------------------------------------------------------------

    def _check_thread_joins(self) -> None:
        class_threads: Dict[
            Tuple[str, str], Dict[str, object]
        ] = {}  # (module, class) -> state
        for qualname, info in self.functions.items():
            tracker = _ThreadTracker(info.module)
            tracker.visit_body(info.node)
            for name, state in tracker.locals.items():
                if (
                    state["started"] is not None
                    and not state["joined"]
                    and not state["escaped"]
                ):
                    self.record(
                        info.module, state["started"], "REP206",
                        f"thread {name!r} started but never joined; join it "
                        "on the shutdown path or register a stop hook",
                    )
            if info.class_name is not None:
                key = (info.module.name, info.class_name)
                agg = class_threads.setdefault(
                    key,
                    {"created": {}, "started": {}, "joined": set(),
                     "module": info.module},
                )
                agg["created"].update(tracker.attrs_created)
                agg["started"].update(tracker.attrs_started)
                agg["joined"].update(tracker.attrs_joined)
        for (_, class_name), agg in class_threads.items():
            for attr, node in agg["started"].items():
                if attr in agg["created"] and attr not in agg["joined"]:
                    self.record(
                        agg["module"], node, "REP206",
                        f"thread self.{attr} of {class_name} started but "
                        "never joined; join it on the shutdown path",
                    )

    # -- output ----------------------------------------------------------------

    def _filtered(self) -> List[Finding]:
        by_path = {str(m.path): _noqa_lines(m.source) for m in self.modules}
        kept = []
        for finding in self.findings:
            codes = by_path.get(finding.path, {}).get(finding.line)
            if codes is not None and (not codes or finding.rule in codes):
                continue
            kept.append(finding)
        return sorted(set(kept))


class _ThreadTracker:
    """Track Thread handles (locals and ``self.*``) in one function."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.locals: Dict[str, Dict[str, object]] = {}
        self.attrs_created: Dict[str, ast.AST] = {}
        self.attrs_started: Dict[str, ast.AST] = {}
        self.attrs_joined: Set[str] = set()

    def visit_body(self, func: ast.AST) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                self._handle_assign(node)
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute):
                self._handle_attribute(node)
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                state = self.locals.get(node.id)
                if state is not None and not state.get("_shielded", set()) & {
                    id(node)
                }:
                    state["escaped"] = True

    def _handle_assign(self, node: ast.Assign) -> None:
        if not (
            isinstance(node.value, ast.Call)
            and self.module.imports.canonical(node.value.func) in _THREAD_CTORS
        ):
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.locals[target.id] = {
                    "created": node, "started": None, "joined": False,
                    "escaped": False, "_shielded": set(),
                }
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.attrs_created[target.attr] = node

    def _handle_attribute(self, node: ast.Attribute) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            state = self.locals.get(base.id)
            if state is not None and node.attr in _THREAD_METHODS:
                state["_shielded"].add(id(base))
                if node.attr == "start" and state["started"] is None:
                    state["started"] = node
                elif node.attr == "join":
                    state["joined"] = True
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            if node.attr == "start":
                self.attrs_started.setdefault(base.attr, node)
            elif node.attr == "join":
                self.attrs_joined.add(base.attr)


class _FunctionScanner:
    """Walk one function body tracking the lockset at each statement."""

    def __init__(
        self,
        analyzer: ThreadAnalyzer,
        info: FunctionInfo,
        entry_locks: frozenset = frozenset(),
    ) -> None:
        self.analyzer = analyzer
        self.info = info
        self.module = info.module
        self.class_name = info.class_name
        self.entry_locks = entry_locks
        self.scan = _Scan(info)
        self.in_init = info.node.name in ("__init__", "__new__")
        self.globals_declared: Set[str] = set()
        self.local_names: Set[str] = set()
        self._prescan()

    def _prescan(self) -> None:
        node = self.info.node
        args = node.args
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.local_names.add(a.arg)
        if args.vararg:
            self.local_names.add(args.vararg.arg)
        if args.kwarg:
            self.local_names.add(args.kwarg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                self.local_names.add(sub.id)
        self.local_names -= self.globals_declared

    def run(self) -> _Scan:
        self.exec_block(self.info.node.body, set(self.entry_locks))
        return self.scan

    # -- lock identity ---------------------------------------------------------

    def lock_id(self, expr: ast.expr) -> Optional[str]:
        analyzer = self.analyzer
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            base, attr = expr.value.id, expr.attr
            owner = None
            if base == "self" and self.class_name:
                owner = self.class_name
            elif base[:1].isupper():
                owner = base
            if owner is not None and (
                attr in analyzer.class_locks.get(owner, ())
                or "lock" in attr.lower()
            ):
                return f"{owner}.{attr}"
            return None
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in analyzer.module_locks.get(self.module.name, ()) or (
                "lock" in name.lower() and name not in self.local_names
            ):
                return f"{self.module.name}.{name}"
        return None

    def _acquire(self, lock: str, held: Set[str], node: ast.AST) -> None:
        for existing in sorted(held):
            self.scan.edges.append((existing, lock, node))
        if lock in held:  # re-acquisition of a non-reentrant lock
            self.scan.edges.append((lock, lock, node))
        self.scan.acquired.add(lock)
        held.add(lock)

    # -- statements ------------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt], held: Set[str]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, held)

    def exec_stmt(self, stmt: ast.stmt, held: Set[str]) -> None:
        if isinstance(stmt, ast.With):
            inner = set(held)
            for item in stmt.items:
                lock = self.lock_id(item.context_expr)
                if lock is not None:
                    self._acquire(lock, inner, stmt)
                else:
                    self.scan_expr(item.context_expr, held)
            self.exec_block(stmt.body, inner)
        elif isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                self.scan_expr(item.context_expr, held)
            self.exec_block(stmt.body, set(held))
        elif isinstance(stmt, ast.If):
            self.scan_expr(stmt.test, held)
            self.exec_block(stmt.body, set(held))
            self.exec_block(stmt.orelse, set(held))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter, held)
            self.exec_block(stmt.body, set(held))
            self.exec_block(stmt.orelse, set(held))
        elif isinstance(stmt, ast.While):
            self.scan_expr(stmt.test, held)
            self.exec_block(stmt.body, set(held))
            self.exec_block(stmt.orelse, set(held))
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, set(held))
            for handler in stmt.handlers:
                self.exec_block(handler.body, set(held))
            self.exec_block(stmt.orelse, set(held))
            self.exec_block(stmt.finalbody, held)
        elif isinstance(stmt, ast.Expr):
            if not self._acquire_release_stmt(stmt.value, held):
                self.scan_expr(stmt.value, held)
        elif isinstance(stmt, ast.Assign):
            self.scan_expr(stmt.value, held)
            for target in stmt.targets:
                self.record_store(target, held)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.scan_expr(stmt.value, held)
                self.record_store(stmt.target, held)
        elif isinstance(stmt, ast.AugAssign):
            self.scan_expr(stmt.value, held)
            # an augmented store reads then writes the target
            self.record_load(stmt.target, held)
            self.record_store(stmt.target, held)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.scan_expr(stmt.value, held)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.scan_expr(stmt.exc, held)
            if stmt.cause is not None:
                self.scan_expr(stmt.cause, held)
        elif isinstance(stmt, ast.Assert):
            self.scan_expr(stmt.test, held)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.record_store(target, held)
        # Import / Pass / Break / Continue / Global / Nonlocal and nested
        # FunctionDef/ClassDef scopes carry no lockset facts.

    def _acquire_release_stmt(
        self, expr: ast.expr, held: Set[str]
    ) -> bool:
        """Handle statement-level ``X.acquire()`` / ``X.release()``."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("acquire", "release")
        ):
            return False
        lock = self.lock_id(expr.func.value)
        if lock is None:
            return False
        if expr.func.attr == "acquire":
            self._acquire(lock, held, expr)
        else:
            held.discard(lock)
        return True

    # -- field accesses --------------------------------------------------------

    def _field_of_attribute(self, node: ast.Attribute) -> Optional[str]:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return None
        if self.class_name is None or "lock" in node.attr.lower():
            return None
        return f"{self.class_name}.{node.attr}"

    def _field_of_name(self, node: ast.Name) -> Optional[str]:
        if node.id in self.local_names and node.id not in self.globals_declared:
            return None
        field = f"{self.module.name}.{node.id}"
        if field in self.analyzer.registry.guards:
            return field
        return None

    def _record_access(
        self, field: str, kind: str, held: Set[str], node: ast.AST
    ) -> None:
        self.scan.accesses.append(
            _Access(field, kind, frozenset(held), node, self.in_init)
        )

    def record_store(self, target: ast.expr, held: Set[str]) -> None:
        if isinstance(target, ast.Attribute):
            field = self._field_of_attribute(target)
            if field is not None:
                self._record_access(field, "write", held, target)
            else:
                self.scan_expr(target.value, held)
        elif isinstance(target, ast.Name):
            field = self._field_of_name(target)
            if field is not None and target.id in self.globals_declared:
                self._record_access(field, "write", held, target)
        elif isinstance(target, ast.Subscript):
            # Mutation through a container: a write to the holding field.
            base = target.value
            self.scan_expr(target.slice, held)
            if isinstance(base, ast.Attribute):
                field = self._field_of_attribute(base)
                if field is not None:
                    self._record_access(field, "write", held, base)
                    return
            if isinstance(base, ast.Name):
                field = self._field_of_name(base)
                if field is not None:
                    self._record_access(field, "write", held, base)
                    return
            self.scan_expr(base, held)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.record_store(element, held)
        elif isinstance(target, ast.Starred):
            self.record_store(target.value, held)

    def record_load(self, target: ast.expr, held: Set[str]) -> None:
        if isinstance(target, ast.Attribute):
            field = self._field_of_attribute(target)
            if field is not None:
                self._record_access(field, "read", held, target)
        elif isinstance(target, ast.Name):
            field = self._field_of_name(target)
            if field is not None:
                self._record_access(field, "read", held, target)
        elif isinstance(target, ast.Subscript):
            self.record_load(target.value, held)

    # -- expressions -----------------------------------------------------------

    def scan_expr(self, node: ast.expr, held: Set[str]) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self.handle_call(child, held)
            elif isinstance(child, ast.Attribute) and isinstance(
                child.ctx, ast.Load
            ):
                field = self._field_of_attribute(child)
                if field is not None:
                    self._record_access(field, "read", held, child)
            elif isinstance(child, ast.Name) and isinstance(
                child.ctx, ast.Load
            ):
                field = self._field_of_name(child)
                if field is not None:
                    self._record_access(field, "read", held, child)

    def handle_call(self, call: ast.Call, held: Set[str]) -> None:
        analyzer = self.analyzer
        canonical = self.module.imports.canonical(call.func)
        blocked = self._blocking_desc(call, canonical)
        if blocked is not None:
            self.scan.direct_blocks = True
            self.scan.blocking.append((call, blocked, frozenset(held)))
        # Thread-escape seeds.
        if canonical in _THREAD_CTORS:
            for kw in call.keywords:
                if kw.arg == "target":
                    analyzer.resolve_escape_target(
                        kw.value, self.module, self.class_name
                    )
        elif isinstance(call.func, ast.Attribute):
            if call.func.attr == "submit" and call.args:
                analyzer.resolve_escape_target(
                    call.args[0], self.module, self.class_name
                )
            elif call.func.attr == "run_in_executor" and len(call.args) >= 2:
                analyzer.resolve_escape_target(
                    call.args[1], self.module, self.class_name
                )
        resolved = analyzer.resolve_call(call, self.module, self.class_name)
        self.scan.calls.append(_Call(resolved, frozenset(held), call))

    def _blocking_desc(
        self, call: ast.Call, canonical: str
    ) -> Optional[str]:
        if self.analyzer.is_blocking_name(canonical):
            if canonical in _BLOCKING_CANONICALS and self._has_timeout(call):
                return None
            return f"{canonical}()"
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in _ALWAYS_BLOCKING_ATTRS:
                return f".{attr}()"
            if attr in _TIMEOUT_BLOCKING_ATTRS and not self._has_timeout(
                call
            ) and not call.args and not call.keywords:
                return f".{attr}() without a timeout"
        return None

    @staticmethod
    def _has_timeout(call: ast.Call) -> bool:
        return any(kw.arg == "timeout" for kw in call.keywords)


# -- public entry points -------------------------------------------------------


def analyze_threads(paths: Sequence[Union[str, Path]]) -> List[Finding]:
    """Concurrency-lint every Python file under ``paths`` (REP201..206)."""
    modules = []
    for file in iter_python_files(paths):
        module = _load_module(file)
        if module is not None:
            modules.append(module)
    extra = []
    for module in modules:
        raw = _static_signatures(module.tree)
        if raw is not None:
            extra.append((module.name, raw))
    registry = build_registry(extra=extra)
    return ThreadAnalyzer(modules, registry).run()


def analyze_thread_source(
    source: str, path: str = "<string>", module_name: Optional[str] = None
) -> List[Finding]:
    """Concurrency-lint one source string (test/tooling convenience)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    module = ModuleInfo(Path(path), source, tree)
    if module_name is not None:
        module.name = module_name
    raw = _static_signatures(tree)
    extra = [(module.name, raw)] if raw is not None else []
    registry = build_registry(extra=extra)
    return ThreadAnalyzer([module], registry).run()
