"""Exactness & determinism dataflow pass (REP301..REP306).

The paper's energy model is an integer statistic — transition counts and
Gram matrices (Eq. 3/10) — and the repo stakes several headline
properties on that: integer-exact :class:`~repro.serve.metrics.EnergyAccount`
tallies, bit-identical fast/naive annealer parity, and bit-identical
checkpoint resume. This pass proves those properties *statically* by
abstract interpretation over two small lattices:

Exactness lattice
    Every value is ``exact-int`` (int literals, ``len``/``argmin``
    results, int64 arrays, integer Gram products), ``float-contaminated``
    (float literals, true division, float dtypes, float reductions) or
    ``unknown``. NumPy dtype promotion is modelled through
    ``dtype=``/``astype`` arguments and through the unit signatures
    already in the registry (a ``farad``-valued return is float; a
    ``bit``-valued one is exact).

Determinism lattice
    Values pick up *taints* from nondeterminism sources — unordered
    ``set`` iteration, ``os.listdir``/``glob`` without ``sorted()``,
    wall-clock/environment reads, ``id()``/``hash()``, and
    ``argmin``/``argsort`` tie-breaks on float keys — and carry them
    through arithmetic, containers, subscripts and (via auto-inferred
    summaries) across function and module boundaries.

Sinks come from ``@exact`` / ``@deterministic`` / ``@order_sensitive``
entries in the ``REPRO_SIGNATURES`` mini-language (see
:mod:`repro.analysis.registry`). Findings only fire at annotated sinks,
so the pass stays quiet on unannotated code:

=======  ==================================================================
REP301   exact-int sink receives a float-contaminated value
REP302   unordered-collection iteration reaches a deterministic sink
REP303   shared RNG handed to several threads without a ``spawn`` split
REP304   order-sensitive float reduction reaches an exact-int sink
REP305   wall-clock / environment value reaches a deterministic sink
REP306   float-key tie-break decides a deterministic result
=======  ==================================================================

Exactness findings (REP301/REP304) are reported at the *sink* — the
assignment, call or ``return`` that would corrupt the exact value — with
the contamination origin in the message. Determinism findings
(REP302/305/306) are reported at the taint *origin* (the ``set``
iteration, ``time.time()`` call or ``argmin``), which is where a
``# repro: noqa[REP30x]`` justification belongs. REP303 is structural
and fires at the thread fan-out site.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.findings import Finding
from repro.analysis.flow import (
    FunctionInfo,
    ModuleInfo,
    _load_module,
    _static_signatures,
)
from repro.analysis.linter import _noqa_lines, iter_python_files
from repro.analysis.registry import (
    Signature,
    SignatureRegistry,
    build_registry,
)
from repro.analysis.units import DIMENSIONLESS, AbstractValue

__all__ = ["EXACT_RULES", "analyze_exactness", "analyze_exactness_source"]

#: The exactness/determinism rule family (code -> one-line summary).
EXACT_RULES = {
    "REP301": "exact-int sink receives a float-contaminated value",
    "REP302": "unordered-collection iteration reaches deterministic output",
    "REP303": "shared RNG used across threads without a spawn split",
    "REP304": "order-sensitive float reduction reaches an exact-int sink",
    "REP305": "wall-clock or environment value reaches deterministic output",
    "REP306": "float-key tie-break decides a deterministic result",
}

#: Taint kind -> rule fired when the taint reaches a deterministic sink.
_TAINT_RULES = {
    "unordered": "REP302",
    "wallclock": "REP305",
    "tiebreak": "REP306",
}


class Taint(NamedTuple):
    """One nondeterminism source, pinned to where it entered the program."""

    kind: str  # "unordered" | "wallclock" | "tiebreak"
    detail: str
    path: str
    line: int
    column: int


_NO_TAINTS: FrozenSet[Taint] = frozenset()


class Fact:
    """Abstract value: exactness status plus determinism taints."""

    __slots__ = (
        "exact", "why", "reduction", "taints", "is_set", "is_rng", "spawned"
    )

    def __init__(
        self,
        exact: Optional[str] = None,  # None | "int" | "float"
        why: Optional[str] = None,  # contamination origin, human-readable
        reduction: bool = False,  # order-sensitive float accumulation
        taints: FrozenSet[Taint] = _NO_TAINTS,
        is_set: bool = False,  # an unordered collection (not yet iterated)
        is_rng: bool = False,  # a Generator / SeedSequence handle
        spawned: bool = False,  # derived via .spawn() — thread-safe to pass
    ) -> None:
        self.exact = exact
        self.why = why
        self.reduction = reduction
        self.taints = taints
        self.is_set = is_set
        self.is_rng = is_rng
        self.spawned = spawned

    # -- constructors ----------------------------------------------------------

    @classmethod
    def int_(cls, taints: FrozenSet[Taint] = _NO_TAINTS) -> "Fact":
        return cls(exact="int", taints=taints)

    @classmethod
    def float_(
        cls,
        why: str,
        reduction: bool = False,
        taints: FrozenSet[Taint] = _NO_TAINTS,
    ) -> "Fact":
        return cls(exact="float", why=why, reduction=reduction, taints=taints)

    def but(self, **overrides) -> "Fact":
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(overrides)
        return Fact(**fields)

    def with_taints(self, taints: Iterable[Taint]) -> "Fact":
        extra = frozenset(taints)
        if not extra:
            return self
        return self.but(taints=self.taints | extra)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fact(exact={self.exact!r}, reduction={self.reduction}, "
            f"taints={sorted(t.kind for t in self.taints)})"
        )


UNKNOWN = Fact()


def _join(a: Fact, b: Fact) -> Fact:
    """Least upper bound of two facts (float and taints win)."""
    if a.exact == b.exact:
        exact, why = a.exact, a.why or b.why
    elif "float" in (a.exact, b.exact):
        exact = "float"
        why = a.why if a.exact == "float" else b.why
    else:
        exact, why = None, None
    return Fact(
        exact=exact,
        why=why,
        reduction=a.reduction or b.reduction,
        taints=a.taints | b.taints,
        is_set=a.is_set or b.is_set,
        is_rng=a.is_rng or b.is_rng,
        spawned=a.spawned and b.spawned,
    )


def _join_all(facts: Sequence[Fact]) -> Fact:
    out = UNKNOWN
    for fact in facts:
        out = _join(out, fact)
    return out


def _union_taints(facts: Iterable[Fact]) -> FrozenSet[Taint]:
    taints: FrozenSet[Taint] = _NO_TAINTS
    for fact in facts:
        taints = taints | fact.taints
    return taints


# -- intrinsic knowledge -------------------------------------------------------

#: Calls whose result is a wall-clock / environment read (REP305 source).
_WALLCLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()",
    "time.monotonic_ns": "time.monotonic_ns()",
    "time.perf_counter": "time.perf_counter()",
    "time.perf_counter_ns": "time.perf_counter_ns()",
    "time.process_time": "time.process_time()",
    "time.ctime": "time.ctime()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.date.today": "date.today()",
    "os.getpid": "os.getpid()",
    "os.getenv": "os.getenv()",
    "os.environ.get": "os.environ",
    "os.uname": "os.uname()",
    "socket.gethostname": "socket.gethostname()",
    "platform.node": "platform.node()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
}

#: Calls yielding filesystem- or completion-ordered iterables (REP302).
_UNORDERED_CALLS = {
    "os.listdir": "os.listdir() filesystem order",
    "os.scandir": "os.scandir() filesystem order",
    "glob.glob": "glob.glob() filesystem order",
    "glob.iglob": "glob.iglob() filesystem order",
    "concurrent.futures.as_completed": "thread completion order",
}

#: ``pathlib``-style methods with filesystem enumeration order.
_UNORDERED_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Factories producing RNG handles (REP303 tracking).
_RNG_FACTORIES = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "repro.rng.ensure_rng",
})

#: Tie-breaking index extractors: first-match wins among equal keys.
_TIEBREAK_CALLS = {
    "numpy.argmin": "np.argmin",
    "numpy.argmax": "np.argmax",
    "numpy.argsort": "np.argsort",
    "numpy.lexsort": "np.lexsort",
    "numpy.unique": "np.unique",
}

#: Order-sensitive reductions (pairwise float accumulation).
_REDUCTION_CALLS = frozenset({
    "numpy.sum", "numpy.nansum", "numpy.dot", "numpy.vdot", "numpy.matmul",
    "numpy.einsum", "numpy.trace", "numpy.prod", "numpy.cumsum",
    "numpy.cumprod",
})

#: Reductions that always produce floats regardless of operand dtype.
_FLOAT_REDUCTION_CALLS = frozenset({
    "numpy.mean", "numpy.average", "numpy.std", "numpy.var",
    "numpy.nanmean", "numpy.median",
})

_REDUCTION_METHODS = frozenset({
    "sum", "dot", "mean", "std", "var", "trace", "prod", "cumsum"
})

#: Always exact-int results.
_INT_CALLS = frozenset({
    "len", "int", "round", "ord", "bin", "divmod",
    "numpy.searchsorted", "numpy.flatnonzero", "numpy.argwhere",
    "numpy.count_nonzero", "numpy.nonzero", "numpy.sign",
    "numpy.packbits", "numpy.unpackbits", "numpy.bitwise_xor",
    "numpy.bitwise_and", "numpy.bitwise_or", "numpy.left_shift",
    "numpy.right_shift", "numpy.invert", "range", "enumerate",
})

#: Always float results.
_FLOAT_CALLS = frozenset({
    "float", "numpy.float64", "numpy.float32", "numpy.sqrt", "numpy.log",
    "numpy.log2", "numpy.log10", "numpy.exp", "numpy.sin", "numpy.cos",
    "numpy.tanh", "numpy.divide", "numpy.true_divide", "math.sqrt",
    "math.log", "math.log2", "math.exp", "math.pow",
})

#: Exactly-rounded float sums — float but *not* order-sensitive.
_ORDER_SAFE_FLOAT_CALLS = frozenset({"math.fsum"})

#: Shape-preserving constructors/transforms: result fact = join of inputs.
_PROPAGATE_CALLS = frozenset({
    "numpy.abs", "numpy.diff", "numpy.minimum", "numpy.maximum",
    "numpy.clip", "numpy.copy", "numpy.transpose", "numpy.reshape",
    "numpy.ravel", "numpy.squeeze", "numpy.roll", "numpy.flip",
    "numpy.diag", "numpy.concatenate", "numpy.stack", "numpy.vstack",
    "numpy.hstack", "numpy.column_stack", "numpy.atleast_1d",
    "numpy.atleast_2d", "numpy.repeat", "numpy.tile", "numpy.sort",
    "abs",
})

#: Float math-module constants.
_FLOAT_CONSTANTS = frozenset({
    "math.pi", "math.e", "math.inf", "math.tau",
    "numpy.pi", "numpy.e", "numpy.inf", "numpy.nan",
})

_INT_DTYPES = frozenset({
    "int", "bool", "int8", "int16", "int32", "int64", "intp", "intc",
    "uint8", "uint16", "uint32", "uint64", "uintp", "bool_",
})
_FLOAT_DTYPES = frozenset({
    "float", "float16", "float32", "float64", "float128", "double",
    "single", "half", "longdouble",
})


def _dtype_kind(node: Optional[ast.expr], imports) -> Optional[str]:
    """Classify a ``dtype=`` argument node as ``"int"``/``"float"``/None."""
    if node is None:
        return None
    name = None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    elif isinstance(node, (ast.Name, ast.Attribute)):
        canonical = imports.canonical(node)
        name = (canonical or "").split(".")[-1]
        if not canonical and isinstance(node, ast.Name):
            name = node.id
    if name is None:
        return None
    name = name.split("[")[0]
    if name in _INT_DTYPES:
        return "int"
    if name in _FLOAT_DTYPES:
        return "float"
    return None


def _fact_from_abstract(values: Optional[Sequence[AbstractValue]]) -> Fact:
    """Derive exactness from a registry shape/unit spec.

    Probabilities and dimensionful quantities (farad, watt, second, …)
    are floats; ``bit`` values (dimensionless, range [0, 1], not a
    probability) are exact ints; everything else is unknown.
    """
    if not values:
        return UNKNOWN
    facts = []
    for value in values:
        if value.obj is not None:
            facts.append(UNKNOWN)
        elif value.prob:
            facts.append(Fact.float_("probability-valued signature"))
        elif value.unit is not None and value.unit != DIMENSIONLESS:
            facts.append(Fact.float_("dimensionful (unit-bearing) signature"))
        elif (
            value.unit == DIMENSIONLESS
            and value.rng == (0.0, 1.0)
            and not value.prob
        ):
            facts.append(Fact.int_())  # the "bit" spec
        else:
            facts.append(UNKNOWN)
    return _join_all(facts)


def _origin(fact: Fact) -> str:
    return fact.why or "float arithmetic"


# -- the analyzer --------------------------------------------------------------


class ExactnessAnalyzer:
    """Interprocedural exactness/determinism analysis over parsed modules."""

    def __init__(
        self, modules: Sequence[ModuleInfo], registry: SignatureRegistry
    ) -> None:
        self.modules = list(modules)
        self.registry = registry
        self.functions: Dict[str, FunctionInfo] = {}
        self.member_index: Dict[str, List[str]] = {}
        self.method_names: Dict[str, List[str]] = {}
        self.module_env: Dict[str, Dict[str, Fact]] = {}
        self._summaries: Dict[str, Fact] = {}
        self._active: Set[str] = set()
        self.findings: Set[Finding] = set()
        self._collect_functions()

    def _collect_functions(self) -> None:
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{module.name}.{node.name}"
                    self.functions[qualname] = FunctionInfo(
                        qualname, node, module
                    )
                elif isinstance(node, ast.ClassDef):
                    for member in node.body:
                        if isinstance(
                            member, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            qualname = (
                                f"{module.name}.{node.name}.{member.name}"
                            )
                            self.functions[qualname] = FunctionInfo(
                                qualname, member, module, class_name=node.name
                            )
                            short = f"{node.name}.{member.name}"
                            self.member_index.setdefault(short, []).append(
                                qualname
                            )
                            self.method_names.setdefault(
                                member.name, []
                            ).append(qualname)

    # -- summaries -------------------------------------------------------------

    def summary(self, qualname: str) -> Fact:
        """Memoized return-value fact of an analyzed function."""
        if qualname in self._summaries:
            return self._summaries[qualname]
        info = self.functions.get(qualname)
        if info is None or qualname in self._active:
            return UNKNOWN
        self._active.add(qualname)
        try:
            interp = _Interp(self, info, record=False)
            interp.execute()
            fact = _join_all(interp.returns) if interp.returns else UNKNOWN
        finally:
            self._active.discard(qualname)
        self._summaries[qualname] = fact
        return fact

    # -- sink lookup -----------------------------------------------------------

    def _names_for(self, info: FunctionInfo) -> List[str]:
        names = [info.qualname]
        if info.class_name:
            names.append(f"{info.class_name}.{info.node.name}")
        else:
            names.append(info.node.name)
        return names

    def is_exact_return(self, info: FunctionInfo) -> bool:
        return any(
            n in self.registry.exact_returns for n in self._names_for(info)
        )

    def is_deterministic_return(self, info: FunctionInfo) -> bool:
        return any(
            n in self.registry.deterministic_returns
            for n in self._names_for(info)
        )

    def signature_for(self, info: FunctionInfo) -> Optional[Signature]:
        for name in self._names_for(info):
            sig = self.registry.functions.get(name)
            if sig is not None:
                return sig
        return None

    def exact_params_for(self, info: FunctionInfo) -> Set[str]:
        params: Set[str] = set()
        for name in self._names_for(info):
            params |= self.registry.exact_params.get(name, set())
        return params

    # -- findings --------------------------------------------------------------

    def report(
        self,
        rule: str,
        path: str,
        line: int,
        column: int,
        message: str,
    ) -> None:
        self.findings.add(
            Finding(
                path=path, line=line, column=column, rule=rule,
                message=message,
            )
        )

    def report_exact_violation(
        self, fact: Fact, node: ast.AST, path: str, sink: str
    ) -> None:
        """REP301/REP304 at the sink, with the contamination origin."""
        if fact.reduction:
            self.report(
                "REP304", path, node.lineno, node.col_offset,
                f"order-sensitive float reduction reaches exact-int "
                f"sink {sink} ({_origin(fact)}); accumulate in int64 or "
                f"use math.fsum",
            )
        elif fact.exact == "float":
            self.report(
                "REP301", path, node.lineno, node.col_offset,
                f"exact-int sink {sink} receives a float-contaminated "
                f"value ({_origin(fact)})",
            )

    def report_taints(self, fact: Fact, sink: str) -> None:
        """REP302/305/306 at each taint's origin."""
        for taint in fact.taints:
            rule = _TAINT_RULES[taint.kind]
            self.report(
                rule, taint.path, taint.line, taint.column,
                f"{taint.detail} flows into deterministic sink {sink}",
            )

    # -- driver ----------------------------------------------------------------

    def run(self) -> List[Finding]:
        for module in self.modules:
            scope = _Interp(self, None, record=False, module=module)
            scope.exec_module(module)
            self.module_env[module.name] = scope.env
        for qualname in sorted(self.functions):
            _Interp(self, self.functions[qualname], record=True).execute()
        return self._filtered()

    def _filtered(self) -> List[Finding]:
        by_path = {str(m.path): _noqa_lines(m.source) for m in self.modules}
        kept = []
        for finding in self.findings:
            codes = by_path.get(finding.path, {}).get(finding.line)
            if codes is not None and (not codes or finding.rule in codes):
                continue
            kept.append(finding)
        return sorted(set(kept))


class _Interp:
    """Abstract interpreter for one function body (or a module scope)."""

    def __init__(
        self,
        analyzer: ExactnessAnalyzer,
        info: Optional[FunctionInfo],
        record: bool,
        module: Optional[ModuleInfo] = None,
    ) -> None:
        self.a = analyzer
        self.info = info
        self.record = record
        self.module = info.module if info is not None else module
        assert self.module is not None
        self.imports = self.module.imports
        self.path = str(self.module.path)
        self.env: Dict[str, Fact] = {}
        self.returns: List[Fact] = []
        self.loop_depth = 0
        self._fanout_rngs: Dict[str, ast.AST] = {}
        self._fanout_reported: Set[str] = set()
        if info is not None:
            self._seed_params()
            self.exact_return = analyzer.is_exact_return(info)
            self.det_return = analyzer.is_deterministic_return(info)
        else:
            self.exact_return = self.det_return = False

    # -- parameter seeding -----------------------------------------------------

    def _seed_params(self) -> None:
        info = self.info
        sig = self.a.signature_for(info)
        exact_params = self.a.exact_params_for(info)
        args = info.node.args
        every = (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        )
        for arg in every:
            if arg.arg in ("self", "cls"):
                continue
            fact = UNKNOWN
            if sig is not None and arg.arg in sig.params:
                fact = _fact_from_abstract(sig.params[arg.arg])
            if arg.arg in exact_params:
                fact = Fact.int_()
            if arg.arg.lower() in ("rng", "generator"):
                fact = Fact(is_rng=True)
            self.env[arg.arg] = fact

    # -- execution -------------------------------------------------------------

    def execute(self) -> None:
        self.exec_block(self.info.node.body)
        self._flush_fanout()

    def exec_module(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._exec(node)

    def exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            fact = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, fact, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.eval(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            old = self._read_target(stmt.target)
            new = self._binop(old, stmt.op, self.eval(stmt.value))
            self._assign(stmt.target, new, stmt)
        elif isinstance(stmt, ast.Return):
            fact = self.eval(stmt.value) if stmt.value is not None else UNKNOWN
            self.returns.append(fact)
            if self.record and self.info is not None:
                sink = f"{self.info.qualname}() return"
                if self.exact_return:
                    self.a.report_exact_violation(
                        fact, stmt, self.path, sink
                    )
                if self.det_return:
                    self.a.report_taints(fact, sink)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            base = dict(self.env)
            self.exec_block(stmt.body)
            branch = self.env
            self.env = dict(base)
            self.exec_block(stmt.orelse)
            self._merge_env(branch)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_fact = self.eval(stmt.iter)
            self._assign(
                stmt.target, self._element_of(iter_fact, stmt.iter), stmt
            )
            self.loop_depth += 1
            self.exec_block(stmt.body)
            self.loop_depth -= 1
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.loop_depth += 1
            self.exec_block(stmt.body)
            self.loop_depth -= 1
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                fact = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, fact, stmt)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in (getattr(stmt, "exc", None),
                          getattr(stmt, "test", None),
                          getattr(stmt, "msg", None)):
                if value is not None:
                    self.eval(value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested defs/classes are analyzed via their own FunctionInfo.

    def _merge_env(self, other: Dict[str, Fact]) -> None:
        for name, fact in other.items():
            if name in self.env:
                self.env[name] = _join(self.env[name], fact)
            else:
                self.env[name] = fact

    # -- assignment / sinks ----------------------------------------------------

    def _assign(self, target: ast.expr, fact: Fact, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = fact
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if fact.is_rng:
                    self._assign(target=element, fact=fact, stmt=stmt)
                else:
                    self._assign(element, Fact(taints=fact.taints), stmt)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, Fact(taints=fact.taints), stmt)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            attr = target.attr
            self.env[f"self.{attr}"] = fact
            class_name = self.info.class_name if self.info else None
            if class_name and self.record:
                key = f"{class_name}.{attr}"
                sink = f"{key} (@exact field)"
                if key in self.a.registry.exact_attrs:
                    self.a.report_exact_violation(
                        fact, stmt, self.path, sink
                    )
                if key in self.a.registry.deterministic_returns:
                    self.a.report_taints(fact, f"{key} (@deterministic)")
        # Subscript stores don't change the tracked fact.

    def _read_target(self, target: ast.expr) -> Fact:
        if isinstance(target, ast.Name):
            return self._name(target.id)
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            return self._self_attr(target.attr)
        return UNKNOWN

    def _self_attr(self, attr: str) -> Fact:
        local = self.env.get(f"self.{attr}")
        if local is not None:
            return local
        class_name = self.info.class_name if self.info else None
        if class_name:
            key = f"{class_name}.{attr}"
            if key in self.a.registry.exact_attrs:
                return Fact.int_()
            spec = self.a.registry.attributes.get(key)
            if spec is not None:
                return _fact_from_abstract([spec])
        return UNKNOWN

    def _name(self, name: str) -> Fact:
        if name in self.env:
            return self.env[name]
        return self.a.module_env.get(self.module.name, {}).get(name, UNKNOWN)

    # -- iteration -------------------------------------------------------------

    def _element_of(self, fact: Fact, node: ast.AST) -> Fact:
        """Fact of one element drawn by iterating ``fact``."""
        taints = fact.taints
        if fact.is_set:
            taints = taints | {
                Taint(
                    "unordered", "iteration over an unordered set",
                    self.path, node.lineno, node.col_offset,
                )
            }
        return Fact(
            exact=fact.exact,
            why=fact.why,
            reduction=fact.reduction,
            taints=taints,
            is_rng=fact.is_rng,
            spawned=fact.spawned,
        )

    # -- expressions -----------------------------------------------------------

    def eval(self, node: ast.expr) -> Fact:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or isinstance(node.value, int):
                return Fact.int_()
            if isinstance(node.value, float):
                return Fact.float_("float literal")
            if isinstance(node.value, complex):
                return Fact.float_("complex literal")
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._name(node.id)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            index = self.eval(node.slice)
            return base.but(
                taints=base.taints | index.taints, is_set=False,
                is_rng=base.is_rng, spawned=base.spawned,
            )
        if isinstance(node, ast.BinOp):
            return self._binop(
                self.eval(node.left), node.op, self.eval(node.right)
            )
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            if isinstance(node.op, ast.Not):
                return Fact.int_(operand.taints)
            return operand
        if isinstance(node, ast.BoolOp):
            return _join_all([self.eval(v) for v in node.values])
        if isinstance(node, ast.Compare):
            facts = [self.eval(node.left)] + [
                self.eval(c) for c in node.comparators
            ]
            # Membership tests against sets are order-independent; only
            # pre-existing taints flow into the boolean.
            return Fact.int_(_union_taints(facts))
        if isinstance(node, ast.IfExp):
            test = self.eval(node.test)
            return _join(
                self.eval(node.body), self.eval(node.orelse)
            ).with_taints(test.taints)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            if not node.elts:
                return UNKNOWN
            facts = [self.eval(e) for e in node.elts]
            joined = _join_all(facts)
            return joined.but(is_set=False, is_rng=joined.is_rng)
        if isinstance(node, ast.Set):
            facts = [self.eval(e) for e in node.elts]
            return Fact(is_set=True, taints=_union_taints(facts))
        if isinstance(node, ast.Dict):
            facts = [self.eval(v) for v in node.values if v is not None]
            facts += [self.eval(k) for k in node.keys if k is not None]
            return Fact(taints=_union_taints(facts))
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(node, [node.elt])
        if isinstance(node, ast.SetComp):
            return self._comprehension(node, [node.elt]).but(is_set=True)
        if isinstance(node, ast.DictComp):
            return self._comprehension(node, [node.key, node.value])
        if isinstance(node, ast.Starred):
            return self._element_of(self.eval(node.value), node)
        if isinstance(node, ast.JoinedStr):
            facts = [
                self.eval(v.value)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            ]
            return Fact(taints=_union_taints(facts))
        if isinstance(node, ast.FormattedValue):
            return Fact(taints=self.eval(node.value).taints)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value) if node.value is not None else UNKNOWN
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.returns.append(self.eval(node.value))
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            fact = self.eval(node.value)
            self.env[node.target.id] = fact
            return fact
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return UNKNOWN
        return UNKNOWN

    def _comprehension(
        self, node: ast.expr, results: Sequence[ast.expr]
    ) -> Fact:
        saved = dict(self.env)
        try:
            self.loop_depth += 1
            for comp in node.generators:
                iter_fact = self.eval(comp.iter)
                self._assign(
                    comp.target, self._element_of(iter_fact, comp.iter), node
                )
                for condition in comp.ifs:
                    self.eval(condition)
            facts = [self.eval(r) for r in results]
        finally:
            self.loop_depth -= 1
            self.env = saved
        joined = _join_all(facts)
        return joined.but(is_set=False)

    def _attribute(self, node: ast.Attribute) -> Fact:
        canonical = self.imports.canonical(node)
        if canonical in _FLOAT_CONSTANTS:
            return Fact.float_(f"{canonical} constant")
        if canonical == "os.environ":
            return Fact(taints=frozenset({
                Taint("wallclock", "os.environ", self.path,
                      node.lineno, node.col_offset)
            }))
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return self._self_attr(node.attr)
        base = self.eval(node.value)
        if node.attr in ("T", "real", "flat"):
            return base
        if node.attr in ("shape", "ndim", "size", "nbytes", "itemsize"):
            return Fact.int_(base.taints)
        return Fact(taints=base.taints)

    # -- calls -----------------------------------------------------------------

    def _call(self, node: ast.Call) -> Fact:
        func = node.func
        canonical = self.imports.canonical(func)
        arg_facts = [
            self.eval(a.value) if isinstance(a, ast.Starred) else self.eval(a)
            for a in node.args
        ]
        kw_facts = {
            kw.arg: self.eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.eval(kw.value)
        all_taints = _union_taints(arg_facts) | _union_taints(
            kw_facts.values()
        )
        self._check_fanout(node, canonical)

        dtype_node = next(
            (kw.value for kw in node.keywords if kw.arg == "dtype"), None
        )
        dtype = _dtype_kind(dtype_node, self.imports)
        first = arg_facts[0] if arg_facts else UNKNOWN

        intrinsic = self._intrinsic_call(
            node, canonical, first, arg_facts, all_taints, dtype
        )
        if intrinsic is not None:
            return intrinsic

        if isinstance(func, ast.Attribute):
            return self._attribute_call(
                node, func, first, arg_facts, kw_facts, all_taints, dtype
            )
        return self._resolved_call(
            node, canonical, func, arg_facts, kw_facts, all_taints
        )

    def _intrinsic_call(
        self,
        node: ast.Call,
        canonical: str,
        first: Fact,
        arg_facts: List[Fact],
        all_taints: FrozenSet[Taint],
        dtype: Optional[str],
    ) -> Optional[Fact]:
        if not canonical:
            return None
        if canonical == "sorted":
            cleaned = frozenset(
                t for t in first.taints if t.kind != "unordered"
            )
            others = _union_taints(arg_facts[1:])
            return first.but(taints=cleaned | others, is_set=False)
        if canonical in ("list", "tuple"):
            if not arg_facts:
                return UNKNOWN
            return self._element_of(first, node)
        if canonical in ("set", "frozenset"):
            return Fact(is_set=True, taints=all_taints)
        if canonical == "dict":
            return Fact(taints=all_taints)
        if canonical in ("id", "hash"):
            return Fact.int_(all_taints | {
                Taint("wallclock", f"{canonical}() object identity",
                      self.path, node.lineno, node.col_offset)
            })
        if canonical in _WALLCLOCK_CALLS:
            return Fact(taints=all_taints | {
                Taint("wallclock", _WALLCLOCK_CALLS[canonical],
                      self.path, node.lineno, node.col_offset)
            })
        if canonical in _UNORDERED_CALLS:
            return Fact(taints=all_taints | {
                Taint("unordered", _UNORDERED_CALLS[canonical],
                      self.path, node.lineno, node.col_offset)
            })
        if canonical in _RNG_FACTORIES:
            spawned = any(f.spawned for f in arg_facts)
            return Fact(is_rng=True, spawned=spawned or first.spawned)
        if canonical in _TIEBREAK_CALLS:
            taints = all_taints
            if first.exact == "float" or first.reduction:
                taints = taints | {
                    Taint(
                        "tiebreak",
                        f"{_TIEBREAK_CALLS[canonical]} tie-break on "
                        f"float keys",
                        self.path, node.lineno, node.col_offset,
                    )
                }
            return Fact.int_(taints)
        if canonical in _REDUCTION_CALLS:
            return self._reduce(canonical.split(".")[-1], first, arg_facts,
                                all_taints, dtype)
        if canonical in _FLOAT_REDUCTION_CALLS:
            return Fact.float_(
                f"float accumulation in {canonical}",
                reduction=True, taints=all_taints,
            )
        if canonical in _ORDER_SAFE_FLOAT_CALLS:
            return Fact.float_(f"{canonical} (exactly rounded)",
                               taints=all_taints)
        if canonical in ("int", "round", "bool"):
            # int() of an order-sensitive float keeps its order
            # sensitivity: the truncated value still depends on the
            # accumulation order.
            return Fact(
                exact="int", reduction=first.reduction, why=first.why,
                taints=all_taints,
            )
        if canonical in _INT_CALLS:
            return Fact.int_(all_taints)
        if canonical in _FLOAT_CALLS:
            return Fact.float_(
                f"{canonical}()", reduction=first.reduction,
                taints=all_taints,
            )
        if canonical in ("numpy.asarray", "numpy.array",
                         "numpy.ascontiguousarray", "numpy.asfarray"):
            if dtype is not None:
                return Fact(exact=dtype, taints=all_taints,
                            why=f"dtype={dtype} array" if dtype == "float"
                            else None)
            return first.but(taints=all_taints, is_set=False)
        if canonical in ("numpy.zeros", "numpy.ones", "numpy.empty",
                         "numpy.full", "numpy.eye", "numpy.linspace",
                         "numpy.logspace"):
            if dtype is not None:
                return Fact(exact=dtype, taints=all_taints,
                            why=f"dtype={dtype} array" if dtype == "float"
                            else None)
            return Fact.float_(
                f"{canonical} defaults to float64", taints=all_taints
            )
        if canonical == "numpy.arange":
            if dtype is not None:
                return Fact(exact=dtype, taints=all_taints)
            return _join_all(arg_facts).but(taints=all_taints, is_set=False)
        if canonical == "numpy.where":
            joined = _join_all(arg_facts[1:]) if len(arg_facts) > 1 else first
            return joined.but(taints=all_taints)
        if canonical in ("sum", "min", "max"):
            # Commutative folds: the result does not depend on iteration
            # order, so "unordered" taints are discharged here — but a
            # float sum is still an order-sensitive accumulation.
            cleaned = frozenset(
                t for t in all_taints if t.kind != "unordered"
            )
            joined = _join_all(arg_facts)
            if canonical == "sum" and joined.exact == "float":
                return Fact.float_(
                    "float accumulation in builtin sum()",
                    reduction=True, taints=cleaned,
                )
            return joined.but(taints=cleaned, is_set=False)
        if canonical in _PROPAGATE_CALLS:
            joined = _join_all(arg_facts)
            return joined.but(taints=all_taints, is_set=False)
        return None

    def _reduce(
        self,
        name: str,
        operand: Fact,
        arg_facts: List[Fact],
        all_taints: FrozenSet[Taint],
        dtype: Optional[str],
    ) -> Fact:
        operand = _join_all(arg_facts) if len(arg_facts) > 1 else operand
        if dtype == "int" or (dtype is None and operand.exact == "int"):
            return Fact.int_(all_taints)
        if dtype == "float" or operand.exact == "float":
            return Fact.float_(
                f"float accumulation in {name}()", reduction=True,
                taints=all_taints,
            )
        return Fact(taints=all_taints)

    def _attribute_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        first: Fact,
        arg_facts: List[Fact],
        kw_facts: Dict[str, Fact],
        all_taints: FrozenSet[Taint],
        dtype: Optional[str],
    ) -> Fact:
        recv = self.eval(func.value)
        attr = func.attr
        taints = all_taints | recv.taints
        if attr == "astype":
            kind = dtype
            if kind is None and node.args:
                kind = _dtype_kind(node.args[0], self.imports)
            if kind is not None:
                return Fact(
                    exact=kind, reduction=recv.reduction,
                    why=f".astype({kind})" if kind == "float" else recv.why,
                    taints=taints,
                )
            return recv.but(taints=taints)
        if attr in ("copy", "tolist", "ravel", "reshape", "flatten",
                    "transpose", "squeeze", "item", "view"):
            return recv.but(taints=taints)
        if attr in _REDUCTION_METHODS:
            return self._reduce(attr, recv, [recv], taints, dtype)
        if attr in ("argmin", "argmax", "argsort"):
            extra: FrozenSet[Taint] = taints
            if recv.exact == "float" or recv.reduction:
                extra = taints | {
                    Taint("tiebreak", f".{attr}() tie-break on float keys",
                          self.path, node.lineno, node.col_offset)
                }
            return Fact.int_(extra)
        if recv.is_rng:
            if attr == "spawn":
                return Fact(is_rng=True, spawned=True)
            if attr in ("integers", "choice", "permutation", "permuted",
                        "shuffle", "bit_generator"):
                return Fact.int_() if attr != "shuffle" else UNKNOWN
            if attr in ("random", "uniform", "normal", "standard_normal",
                        "exponential", "beta", "gamma", "lognormal",
                        "multivariate_normal"):
                return Fact.float_(f"rng.{attr}() sample")
            return UNKNOWN
        if attr in _UNORDERED_METHODS:
            return Fact(taints=taints | {
                Taint("unordered", f".{attr}() filesystem order",
                      self.path, node.lineno, node.col_offset)
            })
        if attr == "pop" and recv.is_set:
            return Fact(taints=taints | {
                Taint("unordered", "set.pop() arbitrary element",
                      self.path, node.lineno, node.col_offset)
            })
        if recv.is_set and attr in ("union", "intersection", "difference",
                                    "symmetric_difference", "copy"):
            return Fact(is_set=True, taints=taints)
        if attr in ("keys", "values", "items", "get", "setdefault"):
            return recv.but(taints=taints, is_set=False)
        if attr in ("append", "add", "extend", "insert", "update"):
            # Mutation: fold the element facts back into the container.
            if isinstance(func.value, ast.Name):
                name = func.value.id
                merged = _join(self._name(name), _join_all(arg_facts))
                self.env[name] = merged.but(is_set=self._name(name).is_set)
            return UNKNOWN
        if attr in ("join", "format", "strip", "split", "encode", "decode",
                    "upper", "lower", "replace"):
            return Fact(taints=taints)
        # Resolve through analyzed methods / registry signatures.
        return self._method_call(node, func, recv, arg_facts, kw_facts,
                                 taints)

    def _method_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        recv: Fact,
        arg_facts: List[Fact],
        kw_facts: Dict[str, Fact],
        taints: FrozenSet[Taint],
    ) -> Fact:
        attr = func.attr
        on_self = (
            isinstance(func.value, ast.Name) and func.value.id == "self"
            and self.info is not None and self.info.class_name
        )
        quals: List[str] = []
        if on_self:
            own = f"{self.module.name}.{self.info.class_name}.{attr}"
            if own in self.a.functions:
                quals = [own]
        if not quals:
            quals = list(self.a.method_names.get(attr, ()))
        # Sink-parameter checks for "<Class>.<method> <param>" annotations.
        self._check_param_sinks(node, attr, quals, arg_facts, kw_facts)
        keys = {attr}
        for qual in quals:
            info = self.a.functions.get(qual)
            if info is not None and info.class_name:
                keys.add(f"{info.class_name}.{attr}")
        if keys & self.a.registry.order_sensitive:
            return Fact.float_(
                f"order-sensitive accumulation in {attr}()",
                reduction=True, taints=taints,
            )
        facts: List[Fact] = []
        for qual in quals:
            facts.append(self.a.summary(qual))
        if not facts:
            # Fall back to registry unit signatures: "Class.method".
            sigs = [
                sig for key, sig in self.a.registry.functions.items()
                if key.count(".") == 1 and key.endswith(f".{attr}")
            ]
            facts = [_fact_from_abstract(sig.ret) for sig in sigs]
        result = _join_all(facts) if facts else UNKNOWN
        return result.with_taints(taints)

    def _resolved_call(
        self,
        node: ast.Call,
        canonical: str,
        func: ast.expr,
        arg_facts: List[Fact],
        kw_facts: Dict[str, Fact],
        all_taints: FrozenSet[Taint],
    ) -> Fact:
        names: List[str] = []
        if canonical:
            names.append(canonical)
            tail = canonical.split(".")[-1]
            if tail != canonical:
                names.append(tail)
        if isinstance(func, ast.Name):
            names.append(func.id)
            names.append(f"{self.module.name}.{func.id}")
        # @order_sensitive callables trump their inferred summaries.
        if any(n in self.a.registry.order_sensitive for n in names):
            label = names[0]
            return Fact.float_(
                f"order-sensitive accumulation in {label}()",
                reduction=True, taints=all_taints,
            )
        qual = next((n for n in names if n in self.a.functions), None)
        callee_key = None
        if qual is not None:
            info = self.a.functions[qual]
            callee_key = (
                f"{info.class_name}.{info.node.name}"
                if info.class_name else info.node.name
            )
        else:
            # A constructor of an analyzed class?
            for name in names:
                tail = name.split(".")[-1]
                if tail[:1].isupper() and (
                    f"{tail}.__init__" in self.a.member_index
                    or tail in {
                        k.split(".")[0] for k in self.a.member_index
                    }
                ):
                    callee_key = tail
                    break
        if callee_key is not None:
            self._check_param_sinks(
                node, callee_key, [], arg_facts, kw_facts,
                direct_keys=[callee_key],
            )
        if qual is not None:
            return self.a.summary(qual).with_taints(all_taints)
        return Fact(taints=all_taints)

    # -- parameter sinks -------------------------------------------------------

    def _check_param_sinks(
        self,
        node: ast.Call,
        attr: str,
        quals: Sequence[str],
        arg_facts: List[Fact],
        kw_facts: Dict[str, Fact],
        direct_keys: Optional[Sequence[str]] = None,
    ) -> None:
        if not self.record:
            return
        registry = self.a.registry
        keys: List[str] = list(direct_keys or [])
        if not keys:
            for table in (registry.exact_params, registry.deterministic_params):
                for key in table:
                    if key == attr or key.endswith(f".{attr}"):
                        keys.append(key)
        # A bare method name can suffix-match annotations on several
        # classes; fire each (param, kind) at most once, labelled with
        # the first matching key.
        fired: Set[Tuple[str, bool]] = set()
        for key in sorted(set(keys)):
            for table, exact in (
                (registry.exact_params, True),
                (registry.deterministic_params, False),
            ):
                params = table.get(key, set())
                # Constructor annotations may use the bare class name.
                if not params and "." not in key:
                    params = table.get(key.split(".")[-1], set())
                if not params:
                    continue
                order = self._param_order(key, attr)
                for index, fact in enumerate(arg_facts):
                    name = (
                        order[index] if order and index < len(order) else None
                    )
                    if name in params and (name, exact) not in fired:
                        fired.add((name, exact))
                        self._fire_param(key, name, fact, node, exact)
                for name, fact in kw_facts.items():
                    if name in params and (name, exact) not in fired:
                        fired.add((name, exact))
                        self._fire_param(key, name, fact, node, exact)

    def _param_order(self, key: str, attr: str) -> Optional[List[str]]:
        """Positional parameter names of the annotated callable."""
        candidates = []
        if "." in key:
            candidates += self.a.member_index.get(key, [])
        else:
            candidates += self.a.member_index.get(f"{key}.__init__", [])
            for qual, info in self.a.functions.items():
                if info.class_name is None and info.node.name == key:
                    candidates.append(qual)
        for qual in candidates:
            info = self.a.functions.get(qual)
            if info is None:
                continue
            args = info.node.args
            names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
            if names and names[0] in ("self", "cls"):
                names = names[1:]
            return names
        sig = self.a.registry.functions.get(key)
        if sig is not None:
            return list(sig.order)
        return None

    def _fire_param(
        self, key: str, name: str, fact: Fact, node: ast.Call, exact: bool
    ) -> None:
        if exact:
            self.a.report_exact_violation(
                fact, node, self.path, f"parameter {name!r} of {key}()"
            )
        else:
            self.a.report_taints(fact, f"parameter {name!r} of {key}()")

    # -- REP303: RNG thread fan-out --------------------------------------------

    def _check_fanout(self, node: ast.Call, canonical: str) -> None:
        if not self.record:
            return
        candidates: List[ast.expr] = []
        if canonical in ("threading.Thread", "threading.Timer",
                         "multiprocessing.Process"):
            for kw in node.keywords:
                if kw.arg == "args" and isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    candidates.extend(kw.value.elts)
        elif isinstance(node.func, ast.Attribute) and node.func.attr in (
            "submit", "map", "apply_async"
        ):
            candidates.extend(node.args[1:])
        if not candidates:
            return
        for expr in candidates:
            fact = self.eval(expr)
            if not fact.is_rng or fact.spawned:
                continue
            root = expr.id if isinstance(expr, ast.Name) else None
            if self.loop_depth > 0:
                self._fire_fanout(expr, root)
            elif root is not None:
                if root in self._fanout_rngs:
                    self._fire_fanout(self._fanout_rngs[root], root)
                    self._fire_fanout(expr, root)
                else:
                    self._fanout_rngs[root] = expr

    def _fire_fanout(self, expr: ast.AST, root: Optional[str]) -> None:
        marker = f"{expr.lineno}:{expr.col_offset}"
        if marker in self._fanout_reported:
            return
        self._fanout_reported.add(marker)
        label = root or "RNG"
        self.a.report(
            "REP303", self.path, expr.lineno, expr.col_offset,
            f"RNG {label!r} is handed to multiple threads without a spawn "
            f"split; derive per-thread generators via rng.spawn() / "
            f"SeedSequence.spawn()",
        )

    def _flush_fanout(self) -> None:
        self._fanout_rngs.clear()

    # -- arithmetic ------------------------------------------------------------

    def _binop(self, left: Fact, op: ast.operator, right: Fact) -> Fact:
        taints = left.taints | right.taints
        if isinstance(op, ast.Div):
            return Fact.float_(
                "float division", taints=taints,
                reduction=left.reduction or right.reduction,
            )
        if isinstance(op, ast.MatMult):
            if left.exact == "int" and right.exact == "int":
                return Fact.int_(taints)
            if "float" in (left.exact, right.exact):
                return Fact.float_(
                    "matrix-product accumulation", reduction=True,
                    taints=taints,
                )
            return Fact(taints=taints)
        if isinstance(op, (ast.BitOr, ast.BitAnd, ast.BitXor)) and (
            left.is_set or right.is_set
        ):
            return Fact(is_set=True, taints=taints)
        if left.exact == "int" and right.exact == "int":
            return Fact.int_(taints)
        if "float" in (left.exact, right.exact):
            why = left.why if left.exact == "float" else right.why
            return Fact.float_(
                why or "float arithmetic", taints=taints,
                reduction=left.reduction or right.reduction,
            )
        return Fact(
            taints=taints, reduction=left.reduction or right.reduction
        )


# -- entry points --------------------------------------------------------------


def analyze_exactness(paths: Sequence[Union[str, Path]]) -> List[Finding]:
    """Exactness/determinism-lint every file under ``paths`` (REP301..306)."""
    modules = []
    for file in iter_python_files(paths):
        module = _load_module(file)
        if module is not None:
            modules.append(module)
    extra = []
    for module in modules:
        raw = _static_signatures(module.tree)
        if raw is not None:
            extra.append((module.name, raw))
    registry = build_registry(extra=extra)
    return ExactnessAnalyzer(modules, registry).run()


def analyze_exactness_source(
    source: str, path: str = "<string>", module_name: Optional[str] = None
) -> List[Finding]:
    """Exactness-lint one source string (test/tooling convenience)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    module = ModuleInfo(Path(path), source, tree)
    if module_name is not None:
        module.name = module_name
    raw = _static_signatures(tree)
    extra = [(module.name, raw)] if raw is not None else []
    registry = build_registry(extra=extra)
    return ExactnessAnalyzer([module], registry).run()
