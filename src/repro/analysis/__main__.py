"""``python -m repro.analysis`` — run the repo-specific linter."""

import sys

from repro.analysis import main

sys.exit(main())
