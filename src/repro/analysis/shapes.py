"""Symbolic ndarray shapes for the deep-lint dataflow pass.

The repository's arrays live in a small family of shapes tied to the
paper's quantities: ``(N,)`` per-line vectors, ``(N, N)`` line-pair
matrices (capacitance, coupling statistics), ``(2N, 2N)`` operators on the
signed-permutation double cover, and ``(T, N)`` sampled bit streams. A
:class:`Dim` is either a concrete integer, an integer multiple of a named
symbol (``N``, ``2N``, ``T``), or the wildcard :data:`ANY`.

Symbols are *rigid within one function body*: every registry signature
uses ``N`` for "number of lines/TSVs" and ``T`` for "number of stream
samples", so two values typed with different symbols genuinely describe
different axes and mixing them is reported (``REP101``). A symbol and a
concrete integer never conflict — the integer may well be that symbol's
runtime value.

Call sites unify the *callee's* signature symbols (treated as unification
variables) against the caller's rigid argument dims via
:class:`Substitution`, so one call binding ``N := 16`` in the first
argument demands ``16`` wherever else the signature says ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "ANY",
    "Dim",
    "Shape",
    "Substitution",
    "broadcast_shapes",
    "dim_of",
    "format_shape",
    "join_shapes",
    "matmul_shape",
    "parse_dim",
    "rigid_dim_eq",
    "unify_dim",
    "unify_shape",
]


@dataclass(frozen=True)
class Dim:
    """One symbolic dimension: ``coeff * sym`` or the concrete ``coeff``.

    ``sym is None`` means a concrete size; ``sym == "?"`` is the wildcard
    (use the :data:`ANY` singleton).
    """

    coeff: int
    sym: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return format_dim(self)


#: Wildcard dimension: compatible with everything, binds nothing.
ANY = Dim(0, "?")

#: A shape is a tuple of dims; ``()`` is a scalar. ``None`` (used where a
#: shape is optional) means the rank itself is unknown.
Shape = Tuple[Dim, ...]

#: Bindings of signature symbols accumulated while checking one call.
Substitution = Dict[str, Dim]


def dim_of(value: int) -> Dim:
    """Concrete dimension of a known integer size."""
    return Dim(int(value), None)


def parse_dim(token: str) -> Dim:
    """Parse one spec token: ``16``, ``N``, ``2N`` or ``?``."""
    token = token.strip()
    if token == "?":
        return ANY
    if token.isdigit():
        return Dim(int(token), None)
    split = 0
    while split < len(token) and token[split].isdigit():
        split += 1
    coeff = int(token[:split]) if split else 1
    sym = token[split:]
    if not sym.isidentifier():
        raise ValueError(f"malformed dimension token {token!r}")
    return Dim(coeff, sym)


def format_dim(dim: Dim) -> str:
    if dim.sym == "?":
        return "?"
    if dim.sym is None:
        return str(dim.coeff)
    return dim.sym if dim.coeff == 1 else f"{dim.coeff}{dim.sym}"


def format_shape(shape: Optional[Shape]) -> str:
    if shape is None:
        return "(?)"
    if shape == ():
        return "scalar"
    inner = ", ".join(format_dim(d) for d in shape)
    return f"({inner},)" if len(shape) == 1 else f"({inner})"


def rigid_dim_eq(a: Dim, b: Dim) -> Optional[bool]:
    """Compare two *rigid* dims: True/False when provable, None otherwise."""
    if a.sym == "?" or b.sym == "?":
        return None
    if a.sym is None and b.sym is None:
        return a.coeff == b.coeff
    if a.sym is not None and b.sym is not None:
        if a.sym != b.sym:
            return False  # rigid-distinct policy: N and T are different axes
        return a.coeff == b.coeff
    return None  # symbol vs concrete: the symbol may take that value


def _scale(coeff: int, dim: Dim) -> Dim:
    if dim.sym == "?":
        return ANY
    return Dim(coeff * dim.coeff, dim.sym)


def unify_dim(param: Dim, arg: Dim, subst: Substitution) -> bool:
    """Unify a signature dim against a rigid argument dim.

    Returns False on a provable conflict; True (possibly after binding a
    symbol in ``subst``) otherwise.
    """
    if param.sym == "?" or arg.sym == "?":
        return True
    if param.sym is None:
        return rigid_dim_eq(param, arg) is not False
    bound = subst.get(param.sym)
    if bound is not None:
        return rigid_dim_eq(_scale(param.coeff, bound), arg) is not False
    # Fresh symbol: bind it to arg / coeff when divisible (N vs 2N guards).
    if arg.coeff % param.coeff != 0:
        return False
    # Binding into the caller's substitution IS the contract here.
    subst[param.sym] = Dim(arg.coeff // param.coeff, arg.sym)  # repro: noqa[REP005]
    return True


def unify_shape(
    param: Optional[Shape], arg: Optional[Shape], subst: Substitution
) -> bool:
    """Unify a full signature shape; False on provable rank/dim conflict."""
    if param is None or arg is None:
        return True
    if len(param) != len(arg):
        return False
    return all(unify_dim(p, a, subst) for p, a in zip(param, arg))


def substitute(shape: Optional[Shape], subst: Substitution) -> Optional[Shape]:
    """Instantiate a signature shape with the bindings of one call."""
    if shape is None:
        return None
    out = []
    for dim in shape:
        if dim.sym in (None, "?"):
            out.append(dim)
            continue
        bound = subst.get(dim.sym)
        out.append(_scale(dim.coeff, bound) if bound is not None else dim)
    return tuple(out)


def join_dim(a: Dim, b: Dim) -> Dim:
    """Least upper bound of two rigid dims (ANY when they disagree)."""
    if rigid_dim_eq(a, b) is True:
        return a
    if a.sym == "?":
        return b if rigid_dim_eq(a, b) is None and b.sym != "?" else ANY
    return ANY


def join_shapes(a: Optional[Shape], b: Optional[Shape]) -> Optional[Shape]:
    """Join two rigid shapes (e.g. the branches of an ``if``)."""
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(join_dim(x, y) for x, y in zip(a, b))


def broadcast_shapes(
    a: Optional[Shape], b: Optional[Shape]
) -> Tuple[Optional[Shape], bool]:
    """NumPy broadcast of two rigid shapes.

    Returns ``(result, conflict)``; ``conflict`` is True only when the
    shapes provably cannot broadcast (neither dim is 1, dims rigidly
    unequal).
    """
    if a is None or b is None:
        return None, False
    out = []
    for i in range(1, max(len(a), len(b)) + 1):
        da = a[-i] if i <= len(a) else dim_of(1)
        db = b[-i] if i <= len(b) else dim_of(1)
        if da == dim_of(1):
            out.append(db)
        elif db == dim_of(1):
            out.append(da)
        else:
            eq = rigid_dim_eq(da, db)
            if eq is False:
                return None, True
            out.append(da if eq is True else _prefer(da, db))
    return tuple(reversed(out)), False


def _prefer(a: Dim, b: Dim) -> Dim:
    """Pick the more informative of two compatible-but-unequal dims."""
    if a.sym == "?":
        return b
    if b.sym == "?":
        return a
    return a if a.sym is not None else b


def matmul_shape(
    a: Optional[Shape], b: Optional[Shape]
) -> Tuple[Optional[Shape], bool]:
    """Result shape of ``a @ b`` and whether the inner dims provably clash."""
    if a is None or b is None:
        return None, False
    if len(a) == 0 or len(b) == 0:
        return None, True  # scalar operand: @ is invalid
    if len(a) == 1 and len(b) == 1:
        return (), rigid_dim_eq(a[0], b[0]) is False
    if len(a) == 1:
        return b[:-2] + b[-1:], rigid_dim_eq(a[0], b[-2]) is False
    if len(b) == 1:
        return a[:-1], rigid_dim_eq(a[-1], b[0]) is False
    conflict = rigid_dim_eq(a[-1], b[-2]) is False
    return a[:-1] + b[-1:], conflict
