"""Interprocedural shape & physical-unit inference (the deep-lint pass).

An abstract interpretation over the package's ASTs that tracks, for every
expression, a symbolic ndarray shape (:mod:`repro.analysis.shapes`), an SI
unit vector, a capacitance-matrix *form* (Maxwell vs SPICE), and
probability bounds (:mod:`repro.analysis.units`). Facts are seeded by the
``REPRO_SIGNATURES`` annotations of the core modules (collected in
:mod:`repro.analysis.registry`) and propagated through a module-level call
graph: the return type of an unannotated function is inferred from its
body, so a Maxwell-form matrix built in one module is still caught when a
second module feeds it to a SPICE-form consumer.

The pass is deliberately *conservative*: it only reports facts it can
prove contradictory. Anything it cannot follow — dynamic dispatch,
fancy indexing, data-dependent shapes — degrades to "unknown", which is
compatible with everything. The rule family:

``REP101``
    Shape mismatch at a call, ``@``/``np.matmul`` or ``np.einsum`` site
    (``N`` vs ``T`` vs ``2N`` confusion, rank errors, object vs array).
``REP102``
    Maxwell-form capacitance matrix passed where SPICE form is required,
    or vice versa (the classic silent sign/diagonal bug).
``REP103``
    Physical-unit mismatch: adding farads to volts, returning joules
    where watts are declared, passing seconds where hertz is expected.
``REP104``
    Probability-valued expression escaping the ``[0, 1]`` bounds implied
    by Eq. 9 (``p + q``, ``2 * p``, literal ``1.5`` as a probability).

Suppression uses the same ``# repro: noqa[REP10x]`` comments as the
shallow rules. Run with ``repro-tsv lint --deep``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.linter import ImportMap, _noqa_lines, iter_python_files
from repro.analysis.registry import Signature, SignatureRegistry, build_registry
from repro.analysis.shapes import (
    ANY,
    Substitution,
    dim_of,
    format_shape,
    matmul_shape,
    rigid_dim_eq,
    substitute,
    unify_shape,
)
from repro.analysis.shapes import broadcast_shapes as _broadcast
from repro.analysis.units import (
    DIMENSIONLESS,
    UNKNOWN,
    AbstractValue,
    div_units,
    format_unit,
    join_values,
    mul_units,
    pow_units,
    scalar_literal,
)

__all__ = ["DEEP_RULES", "analyze_paths", "analyze_source"]

#: The deep rule family (code -> one-line summary), mirrored in docs/SARIF.
DEEP_RULES = {
    "REP101": "shape mismatch at a call / @ / einsum site",
    "REP102": "Maxwell-form vs SPICE-form capacitance matrix confusion",
    "REP103": "physical-unit mismatch in arithmetic or at a call site",
    "REP104": "probability-valued expression escaping [0, 1] (Eq. 9 bounds)",
}

Env = Dict[str, AbstractValue]

_IDENTITY_NUMPY = frozenset(
    {"asarray", "ascontiguousarray", "array", "copy", "nan_to_num", "abs",
     "absolute", "atleast_1d", "real", "round"}
)
_REDUCTIONS = frozenset(
    {"sum", "mean", "max", "min", "amax", "amin", "nansum", "nanmean",
     "nanmax", "nanmin", "median", "std", "var", "prod"}
)
#: Reductions whose result stays inside the operand's numeric range.
_RANGE_KEEPING = frozenset({"mean", "max", "min", "amax", "amin", "median",
                            "nanmean", "nanmax", "nanmin"})


class ModuleInfo:
    """One parsed file under analysis."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self.name = _module_name_for(path)


class FunctionInfo:
    """One function or method found in an analyzed module."""

    def __init__(
        self,
        qualname: str,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        module: ModuleInfo,
        class_name: Optional[str] = None,
    ) -> None:
        self.qualname = qualname
        self.node = node
        self.module = module
        self.class_name = class_name


def _module_name_for(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages."""
    path = Path(path)
    parts = [] if path.stem == "__init__" else [path.stem]
    directory = path.resolve().parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) or path.stem


def _static_signatures(tree: ast.Module) -> Optional[Mapping]:
    """Extract a module's ``REPRO_SIGNATURES`` dict literal, if present."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "REPRO_SIGNATURES"
        ):
            try:
                value = ast.literal_eval(node.value)
            except (ValueError, TypeError):
                return None
            return value if isinstance(value, dict) else None
    return None


class Analyzer:
    """Drives the interprocedural pass over a set of modules."""

    def __init__(
        self, modules: Sequence[ModuleInfo], registry: SignatureRegistry
    ) -> None:
        self.modules = list(modules)
        self.registry = registry
        self.findings: List[Finding] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self._summaries: Dict[str, AbstractValue] = {}
        self._in_progress: Set[str] = set()
        self._analyzed: Set[str] = set()
        for module in self.modules:
            self._collect_functions(module)

    def _collect_functions(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{node.name}"
                self.functions[qualname] = FunctionInfo(qualname, node, module)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{module.name}.{node.name}.{item.name}"
                        self.functions[qualname] = FunctionInfo(
                            qualname, item, module, class_name=node.name
                        )

    # -- running --------------------------------------------------------------

    def run(self) -> List[Finding]:
        for qualname in list(self.functions):
            self.summary(qualname)
        for module in self.modules:
            interpreter = _Interpreter(self, module, {}, context=module.name)
            interpreter.exec_block(
                [
                    stmt
                    for stmt in module.tree.body
                    if not isinstance(
                        stmt,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                ]
            )
        return self._filtered()

    def _filtered(self) -> List[Finding]:
        by_path = {str(m.path): _noqa_lines(m.source) for m in self.modules}
        kept = []
        for finding in self.findings:
            codes = by_path.get(finding.path, {}).get(finding.line)
            if codes is not None and (not codes or finding.rule in codes):
                continue
            kept.append(finding)
        return sorted(set(kept))

    # -- interprocedural summaries --------------------------------------------

    def summary(self, qualname: str) -> AbstractValue:
        """Return type of an analyzed function (inferring it on demand)."""
        if qualname in self._summaries:
            return self._summaries[qualname]
        if qualname in self._in_progress:  # recursion: break with unknown
            return UNKNOWN
        info = self.functions.get(qualname)
        if info is None:
            return UNKNOWN
        self._in_progress.add(qualname)
        try:
            result = self._analyze_function(info)
        finally:
            self._in_progress.discard(qualname)
        self._summaries[qualname] = result
        return result

    def _declared_signature(self, info: FunctionInfo) -> Optional[Signature]:
        sig = self.registry.function(info.qualname)
        if sig is None and info.class_name is not None:
            sig = self.registry.function(
                f"{info.class_name}.{info.node.name}"
            )
        if sig is None and info.class_name is not None and (
            info.node.name == "__init__"
        ):
            # A class's constructor entry annotates __init__'s parameters.
            ctor = self.registry.function(info.class_name)
            if ctor is not None:
                sig = Signature(
                    name=ctor.name, params=ctor.params, order=ctor.order
                )
        return sig

    def _analyze_function(self, info: FunctionInfo) -> AbstractValue:
        if info.qualname in self._analyzed:
            sig = self._declared_signature(info)
            if sig is not None and sig.ret:
                return sig.ret[0]
            return self._summaries.get(info.qualname, UNKNOWN)
        self._analyzed.add(info.qualname)
        sig = self._declared_signature(info)
        env: Env = {}
        if info.class_name is not None:
            env["self"] = AbstractValue(obj=info.class_name)
        if sig is not None:
            for name, alternatives in sig.params.items():
                env[name] = alternatives[0] if len(alternatives) == 1 else UNKNOWN
        interpreter = _Interpreter(self, info.module, env, context=info.qualname)
        interpreter.exec_block(info.node.body)
        inferred = UNKNOWN
        if interpreter.returns:
            inferred = interpreter.returns[0]
            for other in interpreter.returns[1:]:
                inferred = join_values(inferred, other)
        if sig is not None and sig.ret:
            declared = sig.ret[0]
            conflict = _value_conflict(declared, inferred, {})
            if conflict is not None:
                code, detail = conflict
                self.record(
                    info.module, info.node, code,
                    f"return of {info.qualname} contradicts its declared "
                    f"signature: {detail}",
                )
            return declared
        return inferred

    # -- resolution helpers ----------------------------------------------------

    def resolve_signature(
        self, canonical: str, module: ModuleInfo
    ) -> Optional[Signature]:
        sig = self.registry.function(canonical)
        if sig is None and "." not in canonical:
            sig = self.registry.function(f"{module.name}.{canonical}")
        return sig

    def resolve_function(
        self, canonical: str, module: ModuleInfo
    ) -> Optional[str]:
        if canonical in self.functions:
            return canonical
        local = f"{module.name}.{canonical}"
        if local in self.functions:
            return local
        return None

    def record(
        self, module: ModuleInfo, node: ast.AST, code: str, message: str
    ) -> None:
        self.findings.append(
            Finding(
                path=str(module.path),
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                rule=code,
                message=message,
            )
        )


def _value_conflict(
    param: AbstractValue, arg: AbstractValue, subst: Substitution
) -> Optional[Tuple[str, str]]:
    """Provable conflict between a signature slot and an argument fact.

    Returns ``(rule_code, detail)`` or ``None`` when compatible. Checks are
    ordered most-specific first so e.g. a Maxwell/SPICE confusion is
    reported as REP102 even though shapes and units agree.
    """
    if param.is_unknown or arg.is_unknown:
        return None
    if param.obj is not None or arg.obj is not None:
        if param.obj is not None and arg.obj is not None:
            if param.obj != arg.obj:
                return ("REP101", f"expected {param.obj}, got {arg.obj}")
            return None
        if param.obj is not None and (
            arg.shape is not None or arg.unit is not None
        ):
            return (
                "REP101",
                f"expected a {param.obj} instance, got {arg.describe()}",
            )
        if arg.obj is not None and (
            param.shape is not None or param.unit is not None
        ):
            return (
                "REP101",
                f"expected {param.describe()}, got a {arg.obj} instance",
            )
        return None
    if param.prob is True and not arg.lit:
        if arg.prob is False:
            return (
                "REP104",
                "probability-derived expression may escape [0, 1] "
                f"(bounds {_fmt_rng(arg.rng)}); renormalize before use",
            )
        if arg.rng is not None and (arg.rng[0] < 0.0 or arg.rng[1] > 1.0):
            return (
                "REP104",
                f"value in {_fmt_rng(arg.rng)} used as a probability "
                "(Eq. 9 requires [0, 1])",
            )
    if param.prob is True and arg.lit and arg.rng is not None:
        if arg.rng[0] < 0.0 or arg.rng[1] > 1.0:
            return (
                "REP104",
                f"literal {arg.rng[0]:g} used as a probability "
                "(Eq. 9 requires [0, 1])",
            )
    if param.form is not None and arg.form is not None and param.form != arg.form:
        return (
            "REP102",
            f"{arg.form}-form capacitance matrix where {param.form} form "
            "is required; convert with repro.tsv.matrices",
        )
    if (
        param.unit is not None
        and arg.unit is not None
        and not arg.lit
        and param.unit != arg.unit
    ):
        return (
            "REP103",
            f"expected {format_unit(param.unit)}, got {format_unit(arg.unit)}",
        )
    if param.shape is not None and arg.shape is not None:
        if not unify_shape(param.shape, arg.shape, subst):
            return (
                "REP101",
                f"expected shape {format_shape(param.shape)}, got "
                f"{format_shape(arg.shape)}",
            )
    return None


def _fmt_rng(rng: Optional[Tuple[float, float]]) -> str:
    if rng is None:
        return "unknown"
    return f"[{rng[0]:g}, {rng[1]:g}]"


class _Interpreter:
    """Abstract interpreter for one function body or module top level."""

    def __init__(
        self,
        analyzer: Analyzer,
        module: ModuleInfo,
        env: Env,
        context: str,
    ) -> None:
        self.analyzer = analyzer
        self.module = module
        self.env = env
        self.context = context
        self.returns: List[AbstractValue] = []

    # -- statements -----------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value) if stmt.value is not None else UNKNOWN
            self._bind(stmt.target, value)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = UNKNOWN
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.returns.append(
                self.eval(stmt.value) if stmt.value is not None else UNKNOWN
            )
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.For):
            iterated = self.eval(stmt.iter)
            element = UNKNOWN
            if iterated.shape is not None and len(iterated.shape) >= 1:
                element = iterated.but(
                    shape=iterated.shape[1:], form=None, lit=False
                )
            self._bind(stmt.target, element)
            self._exec_branches([stmt.body + stmt.orelse])
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._exec_branches([stmt.body + stmt.orelse])
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            blocks = [stmt.body]
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = UNKNOWN
                blocks.append(handler.body)
            self._exec_branches(blocks)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.env[stmt.name] = UNKNOWN  # nested scopes analyzed separately
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test)
            elif stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Import/Pass/Break/Continue/Global/Nonlocal: nothing to track.

    def _exec_branches(self, blocks: Sequence[Sequence[ast.stmt]]) -> None:
        """Execute alternative blocks on env copies and join the results."""
        snapshots = []
        base = dict(self.env)
        for block in blocks:
            self.env = dict(base)
            self.exec_block(block)
            snapshots.append(self.env)
        merged = dict(base)
        for snap in snapshots:
            for name in set(merged) | set(snap):
                a = merged.get(name, UNKNOWN)
                b = snap.get(name, UNKNOWN)
                merged[name] = a if a == b else join_values(a, b)
        self.env = merged

    def _bind(self, target: ast.expr, value: AbstractValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, UNKNOWN)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN)
        # Subscript / attribute stores mutate objects we don't re-track.

    # -- expressions ----------------------------------------------------------

    def eval(self, node: ast.expr) -> AbstractValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return UNKNOWN
            return scalar_literal(node.value)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unary(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._eval_sequence(node)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join_values(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return AbstractValue(shape=None, unit=DIMENSIONLESS, rng=(0.0, 1.0))
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            self._bind(node.target, value)
            return value
        return UNKNOWN

    def _eval_sequence(self, node: ast.expr) -> AbstractValue:
        values = []
        for element in node.elts:  # type: ignore[attr-defined]
            if isinstance(element, ast.Constant) and isinstance(
                element.value, (int, float)
            ) and not isinstance(element.value, bool):
                values.append(float(element.value))
            elif isinstance(element, ast.UnaryOp) and isinstance(
                element.op, ast.USub
            ) and isinstance(element.operand, ast.Constant) and isinstance(
                element.operand.value, (int, float)
            ):
                values.append(-float(element.operand.value))
            else:
                for child in node.elts:  # type: ignore[attr-defined]
                    self.eval(child)
                return UNKNOWN
        if not values:
            return UNKNOWN
        lo, hi = min(values), max(values)
        return AbstractValue(
            shape=(dim_of(len(values)),),
            rng=(lo, hi),
            prob=True if 0.0 <= lo and hi <= 1.0 else None,
        )

    def _eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        base = self.eval(node.value)
        if base.obj is not None:
            attr = self.analyzer.registry.member_attribute(base.obj, node.attr)
            if attr is not None:
                return attr
            return UNKNOWN
        if base.shape is not None and node.attr == "T":
            return base.but(shape=tuple(reversed(base.shape)), form=None)
        if node.attr in ("real", "imag"):
            return base.but(form=None)
        return UNKNOWN

    def _eval_unary(self, node: ast.UnaryOp) -> AbstractValue:
        value = self.eval(node.operand)
        if isinstance(node.op, ast.UAdd):
            return value
        if isinstance(node.op, ast.USub):
            rng = (-value.rng[1], -value.rng[0]) if value.rng else None
            prob = value.prob
            if prob is not None and rng is not None:
                prob = 0.0 <= rng[0] and rng[1] <= 1.0
            elif prob is True:
                prob = False  # -p escapes [0, 1] unless p == 0
            return value.but(form=None, rng=rng, prob=prob)
        return UNKNOWN

    # -- arithmetic -----------------------------------------------------------

    def _eval_binop(self, node: ast.BinOp) -> AbstractValue:
        a = self.eval(node.left)
        b = self.eval(node.right)
        op = node.op
        if isinstance(op, ast.MatMult):
            return self._matmul(node, a, b)
        if isinstance(op, (ast.Add, ast.Sub)):
            return self._add_sub(node, a, b, subtract=isinstance(op, ast.Sub))
        if isinstance(op, ast.Mult):
            return self._mul(node, a, b)
        if isinstance(op, ast.Div):
            return self._div(node, a, b)
        if isinstance(op, ast.Pow):
            return self._pow(node, a, b)
        shape, conflict = _broadcast(a.shape, b.shape)
        if conflict:
            self._record(node, "REP101", self._broadcast_message(a, b))
        return AbstractValue(shape=shape)

    def _broadcast_message(self, a: AbstractValue, b: AbstractValue) -> str:
        return (
            f"operands of shape {format_shape(a.shape)} and "
            f"{format_shape(b.shape)} cannot broadcast"
        )

    def _matmul(
        self, node: ast.AST, a: AbstractValue, b: AbstractValue
    ) -> AbstractValue:
        shape, conflict = matmul_shape(a.shape, b.shape)
        if conflict:
            self._record(
                node, "REP101",
                f"matmul of {format_shape(a.shape)} @ {format_shape(b.shape)}: "
                "inner dimensions cannot agree",
            )
        return AbstractValue(shape=shape, unit=mul_units(a.unit, b.unit))

    def _add_sub(
        self, node: ast.AST, a: AbstractValue, b: AbstractValue, subtract: bool
    ) -> AbstractValue:
        if (
            a.unit is not None
            and b.unit is not None
            and not a.lit
            and not b.lit
            and a.unit != b.unit
        ):
            verb = "subtract" if subtract else "add"
            self._record(
                node, "REP103",
                f"cannot {verb} {format_unit(b.unit)} "
                f"{'from' if subtract else 'to'} {format_unit(a.unit)}",
            )
        shape, conflict = _broadcast(a.shape, b.shape)
        if conflict:
            self._record(node, "REP101", self._broadcast_message(a, b))
        if a.unit is not None and (b.unit is None or b.lit):
            unit = a.unit if not a.lit else b.unit
        elif b.unit is not None and (a.unit is None or a.lit):
            unit = b.unit if not b.lit else a.unit
        else:
            unit = a.unit if a.unit == b.unit else None
        rng = None
        if a.rng is not None and b.rng is not None:
            if subtract:
                rng = (a.rng[0] - b.rng[1], a.rng[1] - b.rng[0])
            else:
                rng = (a.rng[0] + b.rng[0], a.rng[1] + b.rng[1])
        prob = self._prob_after_arith(a, b, rng)
        return AbstractValue(
            shape=shape, unit=unit, rng=rng, prob=prob, lit=a.lit and b.lit
        )

    def _mul(
        self, node: ast.AST, a: AbstractValue, b: AbstractValue
    ) -> AbstractValue:
        shape, conflict = _broadcast(a.shape, b.shape)
        if conflict:
            self._record(node, "REP101", self._broadcast_message(a, b))
        rng = None
        if a.rng is not None and b.rng is not None:
            products = [x * y for x in a.rng for y in b.rng]
            rng = (min(products), max(products))
        prob = self._prob_after_arith(a, b, rng)
        return AbstractValue(
            shape=shape, unit=mul_units(a.unit, b.unit), rng=rng, prob=prob,
            lit=a.lit and b.lit,
        )

    def _div(
        self, node: ast.AST, a: AbstractValue, b: AbstractValue
    ) -> AbstractValue:
        shape, conflict = _broadcast(a.shape, b.shape)
        if conflict:
            self._record(node, "REP101", self._broadcast_message(a, b))
        rng = None
        if a.rng is not None and b.rng is not None and b.rng[0] > 0.0:
            quotients = [x / y for x in a.rng for y in b.rng]
            rng = (min(quotients), max(quotients))
        prob = self._prob_after_arith(a, b, rng)
        return AbstractValue(
            shape=shape, unit=div_units(a.unit, b.unit), rng=rng, prob=prob,
            lit=a.lit and b.lit,
        )

    def _pow(
        self, node: ast.AST, a: AbstractValue, b: AbstractValue
    ) -> AbstractValue:
        exponent: Optional[int] = None
        if b.rng is not None and b.rng[0] == b.rng[1] and b.lit:
            if float(b.rng[0]).is_integer():
                exponent = int(b.rng[0])
        if exponent is None:
            return AbstractValue(shape=a.shape)
        rng = None
        if a.rng is not None and a.rng[0] >= 0.0 and exponent >= 0:
            rng = (a.rng[0] ** exponent, a.rng[1] ** exponent)
        prob = None
        if a.prob is True and exponent >= 1:
            prob = True
        return AbstractValue(
            shape=a.shape, unit=pow_units(a.unit, exponent), rng=rng,
            prob=prob, lit=a.lit,
        )

    @staticmethod
    def _prob_after_arith(
        a: AbstractValue,
        b: AbstractValue,
        rng: Optional[Tuple[float, float]],
    ) -> Optional[bool]:
        """Probability status of an arithmetic result.

        The result is a provable probability only when its bounds stay in
        ``[0, 1]``; an expression *derived from* a probability whose bounds
        escape (or are unknown while mixing with known quantities) is
        flagged as "escaped" — the REP104 trigger.
        """
        involved = a.prob is not None or b.prob is not None
        if not involved:
            return None
        if rng is not None:
            return 0.0 <= rng[0] and rng[1] <= 1.0
        if a.prob is True and b.prob is True:
            return False  # combined without provable bounds
        return None

    # -- subscripts -----------------------------------------------------------

    def _eval_subscript(self, node: ast.Subscript) -> AbstractValue:
        base = self.eval(node.value)
        for child in ast.walk(node.slice):
            if isinstance(child, ast.Call):
                self.eval(child)
        if base.obj is not None or base.shape is None:
            if base.obj is not None:
                return UNKNOWN
            return AbstractValue(unit=base.unit, prob=base.prob, rng=base.rng)
        index = node.slice
        elements = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        dims: List = []
        position = 0
        for element in elements:
            if isinstance(element, ast.Slice):
                dims.append(ANY)
                position += 1
            elif isinstance(element, ast.Constant) and element.value is None:
                dims.append(dim_of(1))  # np.newaxis
            elif self._is_int_literal(element):
                position += 1  # scalar index: axis removed
            else:
                # Fancy / data-dependent indexing: rank unknown.
                return AbstractValue(unit=base.unit, prob=base.prob, rng=base.rng)
            if position > len(base.shape):
                return AbstractValue(unit=base.unit, prob=base.prob, rng=base.rng)
        dims.extend(base.shape[position:])
        return AbstractValue(
            shape=tuple(dims), unit=base.unit, prob=base.prob, rng=base.rng
        )

    @staticmethod
    def _is_int_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(
            node.value, int
        ) and not isinstance(node.value, bool)

    # -- calls ----------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        )
        args = [
            self.eval(a) for a in node.args if not isinstance(a, ast.Starred)
        ]
        kwargs = {
            kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg
        }
        func = node.func
        if isinstance(func, ast.Attribute):
            base = self.eval(func.value)
            if base.obj is not None:
                sig = self.analyzer.registry.member_function(
                    base.obj, func.attr
                )
                if sig is not None:
                    return self._check_call(sig, node, args, kwargs, has_star)
                return UNKNOWN
            if not base.is_unknown and (
                base.shape is not None or base.unit is not None
            ):
                return self._ndarray_method(base, func.attr, node, args, kwargs)
        canonical = self.module.imports.canonical(func)
        if not canonical:
            return UNKNOWN
        if canonical.startswith("numpy."):
            return self._numpy_call(
                canonical.split(".", 1)[1], node, args, kwargs
            )
        if canonical in ("float", "int"):
            return args[0].but(shape=(), form=None) if args else UNKNOWN
        if canonical == "abs" and args:
            return args[0].but(form=None, rng=None)
        if canonical == "len":
            return AbstractValue(shape=(), unit=DIMENSIONLESS)
        sig = self.analyzer.resolve_signature(canonical, self.module)
        if sig is not None:
            return self._check_call(sig, node, args, kwargs, has_star)
        qualname = self.analyzer.resolve_function(canonical, self.module)
        if qualname is not None:
            return self.analyzer.summary(qualname)
        return UNKNOWN

    def _check_call(
        self,
        sig: Signature,
        node: ast.Call,
        args: Sequence[AbstractValue],
        kwargs: Mapping[str, AbstractValue],
        has_star: bool,
    ) -> AbstractValue:
        subst: Substitution = {}
        if not has_star:
            slots: List[Tuple[str, AbstractValue]] = []
            for index, value in enumerate(args):
                name = sig.param_for_position(index)
                if name is not None:
                    slots.append((name, value))
            for name, value in kwargs.items():
                if name in sig.params:
                    slots.append((name, value))
            for name, value in slots:
                alternatives = sig.params[name]
                conflict = None
                matched = False
                for alternative in alternatives:
                    trial = dict(subst)
                    result = _value_conflict(alternative, value, trial)
                    if result is None:
                        subst = trial
                        matched = True
                        break
                    if conflict is None:
                        conflict = result
                if not matched and conflict is not None:
                    code, detail = conflict
                    self._record(
                        node, code,
                        f"argument {name!r} to {sig.name}: {detail}",
                    )
        if sig.ret is None:
            return UNKNOWN
        if len(sig.ret) != 1:
            return UNKNOWN
        declared = sig.ret[0]
        if declared.shape is not None:
            return declared.but(shape=substitute(declared.shape, subst))
        return declared

    # -- numpy / ndarray intrinsics -------------------------------------------

    def _ndarray_method(
        self,
        base: AbstractValue,
        method: str,
        node: ast.Call,
        args: Sequence[AbstractValue],
        kwargs: Mapping[str, AbstractValue],
    ) -> AbstractValue:
        if method in ("copy", "astype"):
            return base.but(lit=False)
        if method in _REDUCTIONS:
            return self._reduce(base, node, method)
        if method in ("ravel", "flatten"):
            return base.but(shape=(ANY,), form=None)
        if method == "transpose" and base.shape is not None and not node.args:
            return base.but(shape=tuple(reversed(base.shape)), form=None)
        if method == "item":
            return base.but(shape=(), form=None)
        if method == "reshape":
            return AbstractValue(unit=base.unit, prob=base.prob, rng=base.rng)
        if method == "clip":
            return self._clip(base, args)
        return UNKNOWN

    def _reduce(
        self, base: AbstractValue, node: ast.Call, method: str
    ) -> AbstractValue:
        axis = None
        offset = 1 if isinstance(node.func, ast.Attribute) else 2
        axis_nodes = [
            kw.value for kw in node.keywords if kw.arg == "axis"
        ] + list(node.args[offset - 1:offset])
        if any(kw.arg == "keepdims" for kw in node.keywords):
            return AbstractValue(unit=base.unit)
        if axis_nodes:
            candidate = axis_nodes[0]
            if self._is_int_literal(candidate):
                axis = ast.literal_eval(candidate)
            else:
                return AbstractValue(unit=base.unit)
        keeps_range = method in _RANGE_KEEPING
        rng = base.rng if keeps_range else None
        prob = base.prob if keeps_range else (
            False if base.prob is True else None
        )
        if axis is None:
            return AbstractValue(
                shape=(), unit=base.unit, rng=rng, prob=prob
            )
        if base.shape is None:
            return AbstractValue(unit=base.unit, rng=rng, prob=prob)
        rank = len(base.shape)
        if not -rank <= axis < rank:
            return AbstractValue(unit=base.unit, rng=rng, prob=prob)
        axis %= rank
        shape = base.shape[:axis] + base.shape[axis + 1:]
        return AbstractValue(shape=shape, unit=base.unit, rng=rng, prob=prob)

    @staticmethod
    def _clip(base: AbstractValue, args: Sequence[AbstractValue]) -> AbstractValue:
        rng = None
        if (
            len(args) >= 2
            and args[0].rng is not None
            and args[1].rng is not None
        ):
            rng = (args[0].rng[0], args[1].rng[1])
        prob = True if rng is not None and 0.0 <= rng[0] and rng[1] <= 1.0 else None
        return base.but(rng=rng, prob=prob, form=None, lit=False)

    def _numpy_call(
        self,
        name: str,
        node: ast.Call,
        args: Sequence[AbstractValue],
        kwargs: Mapping[str, AbstractValue],
    ) -> AbstractValue:
        if name in _IDENTITY_NUMPY:
            if not args:
                return UNKNOWN
            value = args[0]
            if name in ("abs", "absolute"):
                return value.but(form=None, rng=None, lit=False)
            return value.but(lit=False)
        if name == "negative" and args:
            return args[0].but(
                form=None, lit=False,
                rng=(-args[0].rng[1], -args[0].rng[0]) if args[0].rng else None,
                prob=False if args[0].prob is True else None,
            )
        if name in ("zeros", "empty", "ones", "full"):
            shape = self._literal_shape(node.args[0]) if node.args else None
            rng = {"zeros": (0.0, 0.0), "ones": (1.0, 1.0)}.get(name)
            if name == "full" and len(args) >= 2 and args[1].rng is not None:
                rng = args[1].rng
            prob = (
                True if rng is not None and 0.0 <= rng[0] and rng[1] <= 1.0
                else None
            )
            return AbstractValue(shape=shape, rng=rng, prob=prob)
        if name in ("eye", "identity"):
            size = ANY
            if node.args and self._is_int_literal(node.args[0]):
                size = dim_of(ast.literal_eval(node.args[0]))
            return AbstractValue(
                shape=(size, size), rng=(0.0, 1.0), prob=True
            )
        if name == "diag" and args:
            value = args[0]
            if value.shape is not None and len(value.shape) == 2:
                kept = value.shape[0] if value.shape[0].sym != "?" else value.shape[1]
                return value.but(shape=(kept,), form=None, lit=False)
            if value.shape is not None and len(value.shape) == 1:
                return value.but(
                    shape=(value.shape[0], value.shape[0]), form=None, lit=False
                )
            return value.but(shape=None, form=None, lit=False)
        if name == "outer" and len(args) == 2:
            a, b = args
            da = a.shape[0] if a.shape and len(a.shape) == 1 else ANY
            db = b.shape[0] if b.shape and len(b.shape) == 1 else ANY
            return AbstractValue(shape=(da, db), unit=mul_units(a.unit, b.unit))
        if name in _REDUCTIONS and args:
            return self._reduce(args[0], node, name)
        if name in ("dot", "matmul") and len(args) == 2:
            return self._matmul(node, args[0], args[1])
        if name == "einsum":
            return self._einsum(node, args)
        if name == "sqrt" and args:
            value = args[0]
            unit = None
            if value.unit is not None and all(e % 2 == 0 for e in value.unit):
                unit = tuple(e // 2 for e in value.unit)
            rng = None
            if value.rng is not None and value.rng[0] >= 0.0:
                rng = (value.rng[0] ** 0.5, value.rng[1] ** 0.5)
            return AbstractValue(
                shape=value.shape, unit=unit, rng=rng, prob=value.prob
            )
        if name == "clip" and args:
            return self._clip(args[0], args[1:])
        if name == "where" and len(args) == 3:
            return join_values(args[1], args[2])
        if name in ("exp", "log", "log2", "log10", "tanh", "sin", "cos"):
            if args:
                return AbstractValue(shape=args[0].shape)
            return UNKNOWN
        if name == "linalg.norm" and args:
            return AbstractValue(shape=(), unit=args[0].unit)
        return UNKNOWN

    def _literal_shape(self, node: ast.expr):
        if self._is_int_literal(node):
            return (dim_of(ast.literal_eval(node)),)
        if isinstance(node, (ast.Tuple, ast.List)):
            dims = []
            for element in node.elts:
                if self._is_int_literal(element):
                    dims.append(dim_of(ast.literal_eval(element)))
                else:
                    self.eval(element)
                    dims.append(ANY)
            return tuple(dims)
        return None

    def _einsum(
        self, node: ast.Call, args: Sequence[AbstractValue]
    ) -> AbstractValue:
        if not node.args or not isinstance(node.args[0], ast.Constant):
            return UNKNOWN
        spec = node.args[0].value
        if not isinstance(spec, str) or "..." in spec:
            return UNKNOWN
        inputs, arrow, output = spec.replace(" ", "").partition("->")
        in_specs = inputs.split(",")
        operands = args[1:]
        if len(in_specs) != len(operands):
            return UNKNOWN
        binding: Dict[str, object] = {}
        for letters, operand in zip(in_specs, operands):
            if operand.shape is None:
                continue
            if len(letters) != len(operand.shape):
                self._record(
                    node, "REP101",
                    f"einsum spec {letters!r} expects rank {len(letters)}, "
                    f"operand has shape {format_shape(operand.shape)}",
                )
                return UNKNOWN
            for letter, dim in zip(letters, operand.shape):
                bound = binding.get(letter)
                if bound is None:
                    binding[letter] = dim
                elif rigid_dim_eq(bound, dim) is False:  # type: ignore[arg-type]
                    self._record(
                        node, "REP101",
                        f"einsum index {letter!r} bound to incompatible "
                        "dimensions",
                    )
                    return UNKNOWN
        if not arrow:
            counts: Dict[str, int] = {}
            order: List[str] = []
            for letters in in_specs:
                for letter in letters:
                    counts[letter] = counts.get(letter, 0) + 1
                    if letter not in order:
                        order.append(letter)
            output = "".join(
                letter for letter in sorted(order) if counts[letter] == 1
            )
        unit: Optional[Tuple[int, int, int, int]] = DIMENSIONLESS
        for operand in operands:
            unit = mul_units(unit, operand.unit)
        shape = tuple(binding.get(letter, ANY) for letter in output)
        return AbstractValue(shape=shape, unit=unit)  # type: ignore[arg-type]

    def _record(self, node: ast.AST, code: str, message: str) -> None:
        self.analyzer.record(self.module, node, code, message)


# -- public entry points -------------------------------------------------------


def _load_module(path: Path) -> Optional[ModuleInfo]:
    try:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None  # shallow lint already reports REP000 for these
    return ModuleInfo(Path(path), source, tree)


def analyze_paths(paths: Sequence[Union[str, Path]]) -> List[Finding]:
    """Deep-lint every Python file under ``paths`` (REP101..REP104)."""
    modules = []
    for file in iter_python_files(paths):
        module = _load_module(file)
        if module is not None:
            modules.append(module)
    extra = []
    for module in modules:
        raw = _static_signatures(module.tree)
        if raw is not None:
            extra.append((module.name, raw))
    registry = build_registry(extra=extra)
    return Analyzer(modules, registry).run()


def analyze_source(
    source: str, path: str = "<string>", module_name: Optional[str] = None
) -> List[Finding]:
    """Deep-lint one source string (test/tooling convenience)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    module = ModuleInfo(Path(path), source, tree)
    if module_name is not None:
        module.name = module_name
    raw = _static_signatures(tree)
    extra = [(module.name, raw)] if raw is not None else []
    registry = build_registry(extra=extra)
    return Analyzer([module], registry).run()
