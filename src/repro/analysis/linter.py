"""AST-based static linter with repo-specific physics/numerics rules.

The general-purpose tools (ruff, mypy) cannot know this library's
conventions, so the rules here encode them:

``REP001``
    Unseeded or global NumPy RNG: ``np.random.default_rng()`` without a
    seed, ``np.random.seed(...)``, or any legacy ``np.random.*`` sampling
    call. Every experiment table must be reproducible; use
    :func:`repro.rng.ensure_rng` (or thread an explicit generator).
``REP002``
    Hand-rolled Python loop over an ndarray where a vectorized reduction or
    elementwise op exists (``for i in range(len(x)): acc += x[i]``).
``REP003``
    ``np.matrix`` or removed/deprecated NumPy aliases (``np.float``,
    ``np.alltrue``, ...). These break on modern NumPy and ``np.matrix``
    silently changes ``*`` semantics.
``REP004``
    ``==`` / ``!=`` against a nonzero float literal. Physical quantities
    (capacitances, powers, probabilities) carry rounding error; compare
    with a tolerance. Exact-zero guards (``norm == 0.0``) are allowed.
``REP005``
    In-place mutation of an array received as a function parameter without
    a defensive copy — the classic shared-state bug behind corrupted
    capacitance matrices.

Suppression: append ``# repro: noqa[REP001]`` (comma-separate several
codes) or a bare ``# repro: noqa`` to the offending line, with a short
justification.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Union

from repro.analysis.findings import Finding

#: Legacy global-state samplers of the pre-Generator NumPy API.
_LEGACY_RANDOM = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "permutation", "shuffle", "uniform", "normal",
        "standard_normal", "binomial", "poisson", "exponential", "beta",
        "gamma", "get_state", "set_state", "RandomState",
    }
)

#: NumPy attributes that are deprecated or removed (NumPy >= 1.24 / 2.0).
_DEPRECATED_NUMPY = frozenset(
    {
        "matrix", "mat", "asmatrix", "float", "int", "bool", "object",
        "str", "complex", "long", "unicode", "asfarray", "alltrue",
        "sometrue", "cumproduct", "product", "round_", "NaN", "Inf",
        "Infinity", "infty", "in1d", "row_stack", "trapz",
    }
)

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset(
    {"fill", "sort", "partition", "resize", "put", "itemset", "setfield"}
)

#: numpy functions whose first argument is mutated in place.
_MUTATING_NUMPY_FUNCS = frozenset(
    {"fill_diagonal", "copyto", "put", "place", "putmask"}
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


class ImportMap:
    """Resolve local names to canonical dotted module paths.

    Tracks ``import numpy as np``, ``from numpy import random as nr`` and
    ``from numpy.random import default_rng`` so rules can match on the
    canonical ``numpy.random.default_rng`` regardless of aliasing.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import - outside our scope
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> str:
        """Dotted canonical name of an expression, or ``""`` if not one."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.canonical(node.value)
            return f"{base}.{node.attr}" if base else ""
        return ""


class Rule(ast.NodeVisitor):
    """Base class: a visitor that records :class:`Finding` objects."""

    code = "REP000"
    summary = "base rule"

    def __init__(self, path: str, imports: ImportMap) -> None:
        self.path = path
        self.imports = imports
        self.findings: List[Finding] = []

    def record(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                rule=self.code,
                message=message,
            )
        )


class UnseededRandomRule(Rule):
    """REP001: unseeded ``default_rng()``, ``np.random.seed`` or legacy API."""

    code = "REP001"
    summary = "unseeded or global NumPy RNG"

    def visit_Call(self, node: ast.Call) -> None:
        name = self.imports.canonical(node.func)
        if name == "numpy.random.default_rng" and not node.args and not node.keywords:
            self.record(
                node,
                "np.random.default_rng() without a seed is irreproducible; "
                "use repro.rng.ensure_rng(rng) or pass an explicit seed",
            )
        elif name == "numpy.random.seed":
            self.record(
                node,
                "np.random.seed mutates the global RNG; thread a "
                "np.random.Generator instead",
            )
        elif (
            name.startswith("numpy.random.")
            and name.rsplit(".", 1)[1] in _LEGACY_RANDOM
        ):
            self.record(
                node,
                f"legacy global-state sampler {name}; use a "
                "np.random.Generator method instead",
            )
        self.generic_visit(node)


class HandRolledLoopRule(Rule):
    """REP002: scalar Python loop over an array where NumPy vectorizes.

    Deliberately narrow to stay precise: flags ``for i in range(len(x))``
    (or ``range(x.shape[k])``) loops whose whole body is a single
    element-at-a-time accumulation (``acc += x[i]``) or elementwise store
    (``out[i] = <expr of subscripts by i>``).
    """

    code = "REP002"
    summary = "hand-rolled loop over ndarray"

    def visit_For(self, node: ast.For) -> None:
        loop_var = node.target.id if isinstance(node.target, ast.Name) else None
        if (
            loop_var is not None
            and self._is_array_range(node.iter)
            and len(node.body) == 1
            and not node.orelse
        ):
            body = node.body[0]
            if self._is_scalar_accumulation(body, loop_var):
                self.record(
                    node,
                    "element-wise accumulation loop over an array; use the "
                    "vectorized reduction (x.sum(), x @ y, ...)",
                )
            elif self._is_elementwise_store(body, loop_var):
                self.record(
                    node,
                    "element-wise store loop over an array; use a "
                    "vectorized expression over whole arrays",
                )
        self.generic_visit(node)

    def _is_array_range(self, iter_node: ast.AST) -> bool:
        """``range(len(x))`` / ``range(x.shape[k])`` — iterating an array."""
        if not (
            isinstance(iter_node, ast.Call)
            and self.imports.canonical(iter_node.func) == "range"
            and len(iter_node.args) == 1
        ):
            return False
        arg = iter_node.args[0]
        if (
            isinstance(arg, ast.Call)
            and self.imports.canonical(arg.func) == "len"
        ):
            return True
        return (
            isinstance(arg, ast.Subscript)
            and isinstance(arg.value, ast.Attribute)
            and arg.value.attr == "shape"
        )

    @staticmethod
    def _subscripted_by(node: ast.AST, loop_var: str) -> bool:
        """Is ``node`` a subscript whose index mentions the loop variable?"""
        return isinstance(node, ast.Subscript) and any(
            isinstance(sub, ast.Name) and sub.id == loop_var
            for sub in ast.walk(node.slice)
        )

    def _is_scalar_accumulation(self, stmt: ast.stmt, loop_var: str) -> bool:
        """``acc += x[i]`` (or ``acc = acc + x[i]``)."""
        if (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.op, (ast.Add, ast.Mult))
            and isinstance(stmt.target, ast.Name)
        ):
            return any(
                self._subscripted_by(sub, loop_var)
                for sub in ast.walk(stmt.value)
            )
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.BinOp)
            and isinstance(stmt.value.op, (ast.Add, ast.Mult))
        ):
            acc = stmt.targets[0].id
            reads_acc = any(
                isinstance(sub, ast.Name) and sub.id == acc
                for sub in ast.walk(stmt.value)
            )
            return reads_acc and any(
                self._subscripted_by(sub, loop_var)
                for sub in ast.walk(stmt.value)
            )
        return False

    def _is_elementwise_store(self, stmt: ast.stmt, loop_var: str) -> bool:
        """``out[i] = <expression reading other arrays at index i>``."""
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and self._subscripted_by(stmt.targets[0], loop_var)
        ):
            return False
        return any(
            self._subscripted_by(sub, loop_var)
            for sub in ast.walk(stmt.value)
        )


class DeprecatedNumpyRule(Rule):
    """REP003: ``np.matrix`` and removed/deprecated NumPy aliases."""

    code = "REP003"
    summary = "np.matrix / deprecated NumPy API"

    def _check(self, node: ast.AST) -> None:
        name = self.imports.canonical(node)
        if (
            name.startswith("numpy.")
            and name.count(".") == 1
            and name.rsplit(".", 1)[1] in _DEPRECATED_NUMPY
        ):
            attr = name.rsplit(".", 1)[1]
            if attr in ("matrix", "mat", "asmatrix"):
                message = (
                    f"{name} changes operator semantics and is deprecated; "
                    "use a 2-D np.ndarray"
                )
            else:
                message = (
                    f"{name} is removed/deprecated in modern NumPy; use the "
                    "builtin or the np.* canonical spelling"
                )
            self.record(node, message)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # Catches `from numpy import alltrue` style usage.
        if isinstance(node.ctx, ast.Load):
            self._check(node)


class FloatEqualityRule(Rule):
    """REP004: ``==`` / ``!=`` against a nonzero float literal.

    Comparisons against exactly ``0.0`` are permitted: guarding a division
    by an exactly-zero norm is correct and idiomatic.
    """

    code = "REP004"
    summary = "float equality comparison"

    @staticmethod
    def _nonzero_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != 0.0
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                self._nonzero_float_literal(left)
                or self._nonzero_float_literal(right)
            ):
                self.record(
                    node,
                    "exact ==/!= against a float literal on a physical "
                    "quantity; use math.isclose / np.isclose or an explicit "
                    "tolerance",
                )
                break
        self.generic_visit(node)


class ParameterMutationRule(Rule):
    """REP005: in-place mutation of an array parameter without a copy.

    Within each function, a parameter that is never rebound (no
    ``x = np.asarray(x)`` style defensive copy) must not be the target of a
    subscript store, an in-place operator, a mutating ndarray method, or
    ``np.fill_diagonal``-style in-place numpy functions.
    """

    code = "REP005"
    summary = "mutation of array parameter"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, node) -> None:
        args = node.args
        params = {
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.arg not in ("self", "cls")
        }
        if not params:
            return
        own_body = list(self._own_nodes(node))
        rebound = self._rebound_names(own_body)
        suspects = params - rebound
        if not suspects:
            return
        for sub in own_body:
            self._check_statement(sub, suspects)

    @staticmethod
    def _own_nodes(func) -> Iterable[ast.AST]:
        """Walk the function body without descending into nested defs."""
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # nested scope - analyzed on its own visit
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _rebound_names(nodes: Iterable[ast.AST]) -> Set[str]:
        rebound: Set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                rebound.add(node.id)
        return rebound

    def _base_name(self, node: ast.AST) -> str:
        while isinstance(node, ast.Subscript):
            node = node.value
        return node.id if isinstance(node, ast.Name) else ""

    def _check_statement(self, node: ast.AST, suspects: Set[str]) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                base = self._base_name(target)
                if isinstance(target, ast.Subscript) and base in suspects:
                    self.record(
                        node,
                        f"writes into parameter {base!r} in place; copy it "
                        "first (x = np.asarray(x).copy()) or document the "
                        "mutation",
                    )
        elif isinstance(node, ast.AugAssign):
            base = self._base_name(node.target)
            if isinstance(node.target, ast.Subscript) and base in suspects:
                self.record(
                    node,
                    f"in-place update of parameter {base!r}; copy it first "
                    "or document the mutation",
                )
        elif isinstance(node, ast.Call):
            self._check_call(node, suspects)

    def _check_call(self, node: ast.Call, suspects: Set[str]) -> None:
        name = self.imports.canonical(node.func)
        if (
            name.startswith("numpy.")
            and name.rsplit(".", 1)[1] in _MUTATING_NUMPY_FUNCS
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in suspects
        ):
            self.record(
                node,
                f"{name} mutates parameter {node.args[0].id!r} in place; "
                "copy it first or document the mutation",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in suspects
        ):
            self.record(
                node,
                f".{node.func.attr}() mutates parameter "
                f"{node.func.value.id!r} in place; copy it first or "
                "document the mutation",
            )


class DaemonThreadRule(Rule):
    """REP007: a ``daemon=True`` thread started but never joined.

    Daemon threads are killed mid-statement at interpreter exit, which
    can tear a codec's history stream or drop buffered metrics on the
    floor. A daemon thread is fine as long as its handle is joined
    somewhere in the file, or registered with ``atexit`` as a shutdown
    hook; anything else gets flagged at the construction site.
    """

    code = "REP007"
    summary = "daemon thread never joined or registered for shutdown"

    def visit_Module(self, node: ast.Module) -> None:
        bound: Dict[int, str] = {}  # id(ctor call) -> bound handle name
        ctors: List[ast.Call] = []
        joined: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and self._is_daemon_thread(sub):
                ctors.append(sub)
            if isinstance(sub, ast.Assign) and isinstance(
                sub.value, ast.Call
            ):
                bound[id(sub.value)] = self._bound_name(sub.targets)
            elif isinstance(sub, ast.Attribute) and sub.attr == "join":
                joined.add(self._handle_name(sub.value))
            elif (
                isinstance(sub, ast.Call)
                and self.imports.canonical(sub.func) == "atexit.register"
            ):
                for arg in sub.args:
                    if isinstance(arg, ast.Attribute):
                        joined.add(self._handle_name(arg.value))
                    elif isinstance(arg, ast.Name):
                        joined.add(arg.id)
        for call in ctors:
            name = bound.get(id(call), "")
            if name and name in joined:
                continue
            handle = f"thread {name!r}" if name else "anonymous thread"
            self.record(
                call,
                f"daemon=True {handle} is never joined; daemon threads die "
                "mid-statement at interpreter exit — join it on the "
                "shutdown path or register an atexit hook",
            )

    def _is_daemon_thread(self, call: ast.Call) -> bool:
        if self.imports.canonical(call.func) not in (
            "threading.Thread",
            "threading.Timer",
        ):
            return False
        return any(
            kw.arg == "daemon"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )

    @staticmethod
    def _bound_name(targets: List[ast.expr]) -> str:
        for target in targets:
            if isinstance(target, ast.Name):
                return target.id
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return f"self.{target.attr}"
        return ""

    @staticmethod
    def _handle_name(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return ""


#: All rules, in code order. The registry the CLI and docs iterate over.
ALL_RULES = (
    UnseededRandomRule,
    HandRolledLoopRule,
    DeprecatedNumpyRule,
    FloatEqualityRule,
    ParameterMutationRule,
    DaemonThreadRule,
)


def _noqa_lines(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule codes suppressed on them.

    An empty set means "suppress everything" (bare ``# repro: noqa``).
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressed[lineno] = set()
        else:
            suppressed[lineno] = {
                c.strip().upper() for c in codes.split(",") if c.strip()
            }
    return suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[type] = ALL_RULES,
) -> List[Finding]:
    """Lint one source string and return the surviving findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                column=exc.offset or 0,
                rule="REP000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    imports = ImportMap(tree)
    findings: List[Finding] = []
    for rule_cls in rules:
        rule = rule_cls(path, imports)
        rule.visit(tree)
        findings.extend(rule.findings)
    suppressed = _noqa_lines(source)
    kept = []
    for finding in findings:
        codes = suppressed.get(finding.line)
        if codes is not None and (not codes or finding.rule in codes):
            continue
        kept.append(finding)
    return sorted(kept)


def lint_file(path: Union[str, Path]) -> List[Finding]:
    """Lint one Python file."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=str(path))


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return files


def lint_paths(paths: Sequence[Union[str, Path]]) -> List[Finding]:
    """Lint every Python file under the given files/directories."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file))
    return sorted(findings)
