"""Runtime contracts for the physical invariants the power model assumes.

The paper's model ``P_n = <T, C>`` (Eq. 2) silently produces garbage when
its inputs violate structure the derivation takes for granted:

* ``C`` must be a *SPICE-form* capacitance matrix — symmetric, non-negative
  ground terms on the diagonal, non-negative couplings off it — and its
  Maxwell form must be diagonally dominant (a passive capacitance network);
* an assignment matrix ``A_pi`` must be a *signed permutation* — exactly one
  ``+-1`` per row and per column (Eq. 5);
* bit 1-probabilities feed the depletion model (Eq. 6/7) and must lie in
  ``[0, 1]``;
* the switching statistics ``T_s`` / ``T_c`` (Eq. 3) must be mutually
  consistent: symmetric coupling, matching diagonal, Cauchy-Schwarz bound.

Each ``check_*`` validator raises :class:`ContractViolation` naming the
violated invariant. Checks are **off by default** (zero overhead on hot
paths) and enabled with ``REPRO_CONTRACTS=1`` — the test-suite and CI run
with them on. Boundaries in :mod:`repro.core`, :mod:`repro.tsv` and
:mod:`repro.circuit` call them through :func:`contract` /
:func:`check_enabled`.
"""

from __future__ import annotations

import functools
import inspect
import os
import weakref
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

#: Environment variable toggling the runtime contracts (default: off).
ENV_VAR = "REPRO_CONTRACTS"

_FALSy = ("", "0", "false", "no", "off")


class ContractViolation(ValueError):
    """A physical invariant was violated at a checked boundary.

    Attributes
    ----------
    invariant:
        Short machine-readable name of the broken invariant
        (e.g. ``"capacitance-symmetry"``).
    """

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"contract violated [{invariant}]: {message}")
        self.invariant = invariant


def contracts_enabled() -> bool:
    """True when ``REPRO_CONTRACTS`` asks for runtime checking."""
    return os.environ.get(ENV_VAR, "0").strip().lower() not in _FALSy


class _ContractsOverride:
    """Context manager forcing contracts on/off (used by tests and tools)."""

    def __init__(self, enabled: bool) -> None:
        self.value = "1" if enabled else "0"
        self._saved: Optional[str] = None

    def __enter__(self) -> "_ContractsOverride":
        self._saved = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = self.value
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._saved


def contracts_override(enabled: bool = True) -> _ContractsOverride:
    """``with contracts_override(True): ...`` — scoped enable/disable."""
    return _ContractsOverride(enabled)


class _ValidatedRegistry:
    """Identity memo of objects that already passed a validator.

    The optimizers evaluate thousands of assignments against the *same*
    statistics object and capacitance matrix; re-validating the identical
    (treated-as-immutable) object every move would triple the cost of the
    hot loop. Entries are weak references, so the memo never keeps inputs
    alive, and an id is only trusted while its referent still exists.
    """

    def __init__(self) -> None:
        self._refs: dict = {}

    def add(self, obj: Any) -> None:
        try:
            ref = weakref.ref(
                obj, lambda _r, key=id(obj): self._refs.pop(key, None)
            )
        except TypeError:  # not weak-referenceable (e.g. list input)
            return
        self._refs[id(obj)] = ref

    def __contains__(self, obj: Any) -> bool:
        ref = self._refs.get(id(obj))
        return ref is not None and ref() is obj


_VALIDATED_STATS = _ValidatedRegistry()
_VALIDATED_MATRICES = _ValidatedRegistry()


# ---------------------------------------------------------------------------
# Validators
# ---------------------------------------------------------------------------


def check_probabilities(
    probabilities: Sequence[float], name: str = "probabilities"
) -> np.ndarray:
    """1-bit probabilities: finite, 1-D, each in ``[0, 1]``."""
    p = np.asarray(probabilities, dtype=float)
    if p.ndim != 1:
        raise ContractViolation(
            "probability-shape", f"{name} must be 1-D, got shape {p.shape}"
        )
    if not np.isfinite(p).all():
        raise ContractViolation(
            "probability-finite", f"{name} contains NaN or infinity"
        )
    if ((p < 0.0) | (p > 1.0)).any():
        bad = p[(p < 0.0) | (p > 1.0)][0]
        raise ContractViolation(
            "probability-range",
            f"{name} must lie in [0, 1]; found {bad!r}",
        )
    return p


def check_capacitance_matrix(
    matrix: np.ndarray,
    name: str = "capacitance matrix",
    rtol: float = 1e-8,
) -> np.ndarray:
    """SPICE-form capacitance matrix (Eq. 2 input).

    Square, finite, symmetric, all entries non-negative (ground terms on
    the diagonal, couplings off it), and diagonally dominant in Maxwell
    form — which is what makes the capacitance network passive.
    """
    if matrix in _VALIDATED_MATRICES:
        return np.asarray(matrix, dtype=float)
    c = np.asarray(matrix, dtype=float)
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ContractViolation(
            "capacitance-square", f"{name} must be square, got {c.shape}"
        )
    if not np.isfinite(c).all():
        raise ContractViolation(
            "capacitance-finite", f"{name} contains NaN or infinity"
        )
    scale = float(np.abs(c).max()) or 1.0
    if not np.allclose(c, c.T, atol=rtol * scale, rtol=0.0):
        worst = float(np.abs(c - c.T).max())
        raise ContractViolation(
            "capacitance-symmetry",
            f"{name} is not symmetric (max |C - C^T| = {worst:.3e}); "
            "symmetrize the extraction result first",
        )
    if (c < -rtol * scale).any():
        worst = float(c.min())
        raise ContractViolation(
            "capacitance-spice-form",
            f"{name} has a negative entry ({worst:.3e}); SPICE form "
            "requires non-negative ground and coupling terms",
        )
    # Maxwell diagonal = ground + sum of couplings >= sum of couplings:
    # automatic for non-negative SPICE entries, but recheck numerically so
    # a corrupted conversion cannot sneak through.
    maxwell_diag = c.sum(axis=1)
    off_sum = maxwell_diag - np.diag(c)
    if (maxwell_diag < off_sum - rtol * scale).any():
        raise ContractViolation(
            "capacitance-diagonal-dominance",
            f"{name} is not diagonally dominant in Maxwell form; the "
            "network would not be passive",
        )
    _VALIDATED_MATRICES.add(matrix)
    return c


def check_signed_permutation(assignment: Any) -> Any:
    """A valid Eq. 5 assignment: exactly one ``+-1`` per row and column.

    Accepts either an explicit matrix or any object exposing
    ``line_of_bit`` / ``inverted`` (e.g.
    :class:`repro.core.assignment.SignedPermutation`).
    """
    if hasattr(assignment, "line_of_bit") and hasattr(assignment, "inverted"):
        lines = tuple(int(x) for x in assignment.line_of_bit)
        inverted = tuple(bool(x) for x in assignment.inverted)
        n = len(lines)
        if len(inverted) != n:
            raise ContractViolation(
                "signed-permutation",
                f"line_of_bit has {n} entries but inverted has "
                f"{len(inverted)}",
            )
        if sorted(lines) != list(range(n)):
            raise ContractViolation(
                "signed-permutation",
                f"line_of_bit {lines} is not a permutation of 0..{n - 1}; "
                "Eq. 5 requires exactly one line per bit",
            )
        return assignment
    a = np.asarray(assignment, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ContractViolation(
            "signed-permutation",
            f"assignment matrix must be square, got shape {a.shape}",
        )
    entries_ok = bool(np.isin(a, (-1.0, 0.0, 1.0)).all())
    one_per_row = bool((np.count_nonzero(a, axis=1) == 1).all())
    one_per_col = bool((np.count_nonzero(a, axis=0) == 1).all())
    if not (entries_ok and one_per_row and one_per_col):
        raise ContractViolation(
            "signed-permutation",
            "matrix is not a signed permutation; Eq. 5 requires exactly "
            "one +-1 per row and per column and zeros elsewhere",
        )
    return assignment


def check_switching_matrix(stats: Any, atol: float = 1e-9) -> Any:
    """Consistency of the ``T_s`` / ``T_c`` statistics (Eq. 3).

    Accepts any object exposing ``self_switching``, ``coupling`` and
    ``probabilities`` (e.g. :class:`repro.stats.switching.BitStatistics`).
    """
    if stats in _VALIDATED_STATS:
        return stats
    self_switching = np.asarray(stats.self_switching, dtype=float)
    coupling = np.asarray(stats.coupling, dtype=float)
    n = self_switching.shape[0]
    if coupling.shape != (n, n):
        raise ContractViolation(
            "switching-shape",
            f"coupling matrix shape {coupling.shape} does not match "
            f"{n} lines",
        )
    if not (np.isfinite(self_switching).all() and np.isfinite(coupling).all()):
        raise ContractViolation(
            "switching-finite", "switching statistics contain NaN or infinity"
        )
    if ((self_switching < -atol) | (self_switching > 1.0 + atol)).any():
        raise ContractViolation(
            "switching-range",
            "self-switching probabilities E{db_i^2} must lie in [0, 1]",
        )
    if not np.allclose(coupling, coupling.T, atol=atol):
        raise ContractViolation(
            "switching-symmetry",
            "coupling matrix E{db_i db_j} must be symmetric",
        )
    if not np.allclose(np.diag(coupling), self_switching, atol=atol):
        raise ContractViolation(
            "switching-diagonal",
            "diag(coupling) must equal the self-switching vector "
            "(the i = j case of the same expectation)",
        )
    bound = np.sqrt(np.outer(self_switching, self_switching))
    if (np.abs(coupling) > bound + atol).any():
        raise ContractViolation(
            "switching-cauchy-schwarz",
            "|E{db_i db_j}| exceeds sqrt(E{db_i^2} E{db_j^2}); the "
            "moments cannot come from any real bit stream",
        )
    check_probabilities(stats.probabilities, name="bit probabilities")
    _VALIDATED_STATS.add(stats)
    return stats


def check_mna_system(system: Any) -> Any:
    """Structural sanity of an assembled MNA descriptor system.

    Accepts any object exposing ``a_matrix``, ``e_matrix`` and ``n_nodes``
    (e.g. :class:`repro.circuit.mna.MNASystem`): square equally-sized
    finite matrices whose capacitive node block of ``E`` is symmetric.
    """
    a = np.asarray(system.a_matrix, dtype=float)
    e = np.asarray(system.e_matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1] or a.shape != e.shape:
        raise ContractViolation(
            "mna-shape",
            f"A and E must be equal square matrices, got {a.shape} "
            f"and {e.shape}",
        )
    if not (np.isfinite(a).all() and np.isfinite(e).all()):
        raise ContractViolation(
            "mna-finite", "MNA matrices contain NaN or infinity"
        )
    n_nodes = int(system.n_nodes)
    node_block = e[:n_nodes, :n_nodes]
    if not np.allclose(node_block, node_block.T):
        raise ContractViolation(
            "mna-capacitive-symmetry",
            "the node block of E (capacitor stamps) must be symmetric",
        )
    return system


# ---------------------------------------------------------------------------
# Application helpers
# ---------------------------------------------------------------------------


def check_enabled(check: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
    """Run ``check(*args, **kwargs)`` only when contracts are enabled.

    The inline form for post-conditions and boundaries where a decorator
    does not fit.
    """
    if contracts_enabled():
        check(*args, **kwargs)


def contract(**param_checks: Callable[[Any], Any]) -> Callable:
    """Decorator applying validators to named parameters when enabled.

    Example::

        @contract(cap_matrix=check_capacitance_matrix)
        def normalized_power(stats, cap_matrix): ...

    Parameters bound to ``None`` are skipped (optional arguments keep
    their meaning).
    """

    def decorate(fn: Callable) -> Callable:
        signature = inspect.signature(fn)
        unknown = set(param_checks) - set(signature.parameters)
        if unknown:
            raise TypeError(
                f"contract on {fn.__qualname__} names unknown "
                f"parameters {sorted(unknown)}"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if contracts_enabled():
                bound = signature.bind(*args, **kwargs)
                for name, check in param_checks.items():
                    value = bound.arguments.get(name)
                    if value is not None:
                        check(value)
            return fn(*args, **kwargs)

        return wrapper

    return decorate


def iter_validators() -> Iterator[Callable]:
    """All public validators (used by docs and the property tests)."""
    yield check_probabilities
    yield check_capacitance_matrix
    yield check_signed_permutation
    yield check_switching_matrix
    yield check_mna_system
