"""Registry of shape/unit signatures seeding the deep-lint flow pass.

Core modules annotate themselves with a module-level ``REPRO_SIGNATURES``
dict (statically readable — the flow pass also picks these dicts out of
any file it analyzes, so fixtures and new modules can declare their own).
Each entry maps a function, class, method or attribute name to a *spec*:

``"funcname": {"param": "<spec>", ..., "return": "<spec>"}``
    a function / method / constructor signature;
``"ClassName.attr": "<spec>"``
    the type of an instance attribute or property.

The spec mini-language is one line per value::

    spec        := objtype | shape [unit] [tag ...] | "any"
    shape       := "scalar" | "(" dim {"," dim} ")"
    dim         := INT | SYM | INT SYM | "?"        # e.g. 16, N, 2N, ?
    unit        := farad | volt | joule | watt | second | hertz | meter
                 | ohm | henry | ampere | coulomb | bit | probability
                 | dimensionless
    tag         := spice | maxwell
    objtype     := a capitalized class name, e.g. BitStatistics

Alternatives are separated by ``|`` (``"(N, N) farad spice | LinearCapacitanceModel"``);
an argument is only reported when it conflicts with *every* alternative.
Symbols are shared across one signature: ``N`` in two parameters means
the same size at every call site.

Three ``@``-prefixed keys feed the concurrency pass
(:mod:`repro.analysis.concurrency`) instead of the flow pass:

``"@guards": ["ClassName.attr guarded_by _lock", "_global guarded_by _l"]``
    declares which lock protects a field. A capitalized head names an
    instance attribute guarded by an attribute lock of the same class;
    a lowercase head names a module global guarded by a module-level
    lock.
``"@threads": ["ClassName", "ClassName.method", "funcname"]``
    declares thread entry points: the named class escapes to another
    thread, or the named callable runs on one.
``"@blocking": ["funcname"]``
    declares callables that may block indefinitely (so calling them
    while holding a lock is REP204).

Three more feed the exactness/determinism pass
(:mod:`repro.analysis.exactness`):

``"@exact": ["ClassName.attr", "ClassName.method param", "func return"]``
    declares exact-integer sinks. A single dotted token names an
    instance attribute that must only ever hold exact-int values (and is
    in turn *assumed* exact when read); ``"<callable> <param>"`` marks
    one parameter, ``"<callable> return"`` the returned value.
``"@deterministic": ["func", "ClassName.method", "Class.save payload"]``
    declares determinism sinks: the named callable's result (or the
    named parameter — typically a checkpoint/report payload) must not
    depend on set iteration order, wall-clock time, or float-key
    tie-breaks.
``"@order_sensitive": ["funcname"]``
    declares callables whose float result depends on operand order
    (custom accumulation loops); their results trip REP304 when they
    reach an ``@exact`` sink.

Malformed entries of any directive raise ``ValueError`` at registry
build time, exactly like ``@guards``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.shapes import Shape, parse_dim
from repro.analysis.units import DIMENSIONLESS, AbstractValue, parse_unit

__all__ = [
    "Signature",
    "SignatureRegistry",
    "build_registry",
    "parse_spec",
]

#: Modules whose ``REPRO_SIGNATURES`` seed the registry. Kept explicit so
#: the registry is importable without scanning the whole package.
ANNOTATED_MODULES = (
    "repro.stats.switching",
    "repro.core.assignment",
    "repro.core.power",
    "repro.core.fastpower",
    "repro.core.optimize",
    "repro.reporting",
    "repro.tsv.matrices",
    "repro.tsv.capmodel",
    "repro.tsv.extractor",
    "repro.circuit.mna",
    "repro.datagen.gaussian",
    "repro.runtime.artifacts",
    "repro.runtime.faults",
    "repro.runtime.supervision",
    "repro.serve.codecs",
    "repro.serve.metrics",
    "repro.serve.session",
    "repro.serve.engine",
    "repro.serve.server",
    "repro.serve.protocol",
    "repro.serve.fleet",
    "repro.serve.worker",
    "repro.grid.space",
    "repro.grid.queue",
    "repro.grid.store",
    "repro.grid.runners",
    "repro.grid.worker",
    "repro.grid.query",
)

SpecDict = Mapping[str, str]


def _dotted_identifier(token: str) -> bool:
    """True for ``name``, ``Class.attr``, ``pkg.mod.func`` style tokens."""
    return bool(token) and all(
        part.isidentifier() for part in token.split(".")
    )


def _parse_single(spec: str) -> AbstractValue:
    tokens_source = spec.strip()
    if not tokens_source or tokens_source == "any":
        return AbstractValue()
    # Object type: a capitalized identifier.
    if tokens_source.isidentifier() and tokens_source[0].isupper():
        return AbstractValue(obj=tokens_source)
    shape: Optional[Shape]
    rest = tokens_source
    if rest.startswith("("):
        close = rest.index(")")
        dims = [t for t in rest[1:close].split(",") if t.strip()]
        shape = tuple(parse_dim(t) for t in dims)
        rest = rest[close + 1:]
    elif rest.split()[0] == "scalar":
        shape = ()
        rest = rest.split(None, 1)[1] if " " in rest.strip() else ""
    else:
        raise ValueError(f"malformed spec {spec!r}: expected shape or object")
    unit = None
    form = None
    prob = None
    rng = None
    for token in rest.split():
        if token in ("spice", "maxwell"):
            form = token
        elif token == "probability":
            unit, prob, rng = DIMENSIONLESS, True, (0.0, 1.0)
        elif token == "bit":
            unit, rng = DIMENSIONLESS, (0.0, 1.0)
        elif token == "any":
            unit = None
        else:
            unit = parse_unit(token)
    return AbstractValue(shape=shape, unit=unit, form=form, prob=prob, rng=rng)


def parse_spec(spec: str) -> List[AbstractValue]:
    """Parse a spec string into its list of accepted alternatives."""
    return [_parse_single(part) for part in spec.split("|")]


@dataclass
class Signature:
    """Parsed signature of one callable."""

    name: str
    params: Dict[str, List[AbstractValue]] = field(default_factory=dict)
    order: Tuple[str, ...] = ()
    ret: Optional[List[AbstractValue]] = None

    def param_for_position(self, index: int) -> Optional[str]:
        return self.order[index] if index < len(self.order) else None


def _parse_signature(name: str, spec: SpecDict) -> Signature:
    params: Dict[str, List[AbstractValue]] = {}
    order: List[str] = []
    ret = None
    for key, value in spec.items():
        if key == "return":
            ret = parse_spec(value)
        else:
            params[key] = parse_spec(value)
            order.append(key)
    return Signature(name=name, params=params, order=tuple(order), ret=ret)


class SignatureRegistry:
    """All known signatures, addressable by dotted name and member name.

    ``functions`` is keyed by every name a call site might canonicalize
    to: ``repro.tsv.matrices.maxwell_to_spice`` for plain functions and
    both ``repro.stats.switching.BitStatistics.from_stream`` and
    ``BitStatistics.from_stream`` for members. ``attributes`` maps
    ``ClassName.attr`` to the attribute's abstract value, and
    ``constructors`` maps a class's dotted name to its instance type.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, Signature] = {}
        self.attributes: Dict[str, AbstractValue] = {}
        self.object_classes: Dict[str, str] = {}  # dotted name -> class name
        # Concurrency facts (the @-prefixed mini-language):
        self.guards: Dict[str, str] = {}  # field id -> lock id
        self.thread_entries: set = set()  # "Class", "Class.m", "func"
        self.blocking: set = set()  # callables that may block
        # Exactness/determinism facts (repro.analysis.exactness):
        self.exact_attrs: set = set()  # "Class.attr" exact-int fields
        self.exact_returns: set = set()  # callables returning exact ints
        self.exact_params: Dict[str, set] = {}  # callable -> {param, ...}
        self.deterministic_returns: set = set()  # callables w/ det. results
        self.deterministic_params: Dict[str, set] = {}  # callable -> params
        self.order_sensitive: set = set()  # order-dependent float reducers

    # -- population -----------------------------------------------------------

    def add_module_signatures(self, module_name: str, raw: Mapping) -> None:
        """Merge one module's ``REPRO_SIGNATURES`` dict."""
        for key, spec in raw.items():
            if not isinstance(key, str):
                continue
            if key.startswith("@"):
                self._add_concurrency_spec(module_name, key, spec)
                continue
            dotted = f"{module_name}.{key}" if module_name else key
            if isinstance(spec, str):
                # "ClassName.attr": "<spec>" — an attribute/property type.
                alternatives = parse_spec(spec)
                self.attributes[key] = alternatives[0]
                self.attributes[dotted] = alternatives[0]
                continue
            sig = _parse_signature(dotted, spec)
            self.functions[dotted] = sig
            head = key.split(".")[0]
            if head[:1].isupper():
                # Class member (or the constructor itself): also reachable
                # as "ClassName.member" on an instance/registry object.
                self.functions[key] = sig
                if "." not in key:
                    self.object_classes[dotted] = key
                    if sig.ret is None:
                        sig.ret = [AbstractValue(obj=key)]

    def _add_concurrency_spec(
        self, module_name: str, key: str, spec: Sequence
    ) -> None:
        """Fold one ``@guards`` / ``@threads`` / ``@blocking`` entry in."""
        if not isinstance(spec, (list, tuple)):
            raise ValueError(f"{key} expects a list of strings")
        if key == "@guards":
            for entry in spec:
                self._add_guard(module_name, entry)
        elif key == "@threads":
            self.thread_entries.update(str(entry) for entry in spec)
        elif key == "@blocking":
            self.blocking.update(str(entry) for entry in spec)
        elif key in ("@exact", "@deterministic"):
            for entry in spec:
                self._add_exactness_sink(module_name, key, entry)
        elif key == "@order_sensitive":
            for entry in spec:
                name = str(entry)
                if len(name.split()) != 1 or not _dotted_identifier(name):
                    raise ValueError(
                        f"malformed @order_sensitive entry {entry!r}: "
                        "expected a single callable name"
                    )
                self.order_sensitive.add(name)
                if module_name:
                    self.order_sensitive.add(f"{module_name}.{name}")
        else:
            raise ValueError(f"unknown registry directive {key!r}")

    def _add_exactness_sink(
        self, module_name: str, key: str, entry: str
    ) -> None:
        """Fold one ``@exact`` / ``@deterministic`` entry in.

        One token names a sink directly: a dotted, capitalized head is an
        instance attribute (``"EnergyAccount._gram"``), anything else a
        callable whose *return value* is the sink. Two tokens name a
        callable plus one of its parameters (or the pseudo-parameter
        ``return``): ``"CheckpointStore.save payload"``.
        """
        tokens = str(entry).split()
        if not tokens or len(tokens) > 2 or not all(
            _dotted_identifier(t) for t in tokens
        ):
            raise ValueError(
                f"malformed {key} entry {entry!r}: expected "
                "'<Class.attr>', '<callable>', '<callable> <param>' or "
                "'<callable> return'"
            )
        if key == "@exact":
            attrs, returns, params = (
                self.exact_attrs, self.exact_returns, self.exact_params
            )
        else:
            attrs, returns, params = (
                self.deterministic_returns,  # single callables: return sinks
                self.deterministic_returns,
                self.deterministic_params,
            )
        name = tokens[0]
        names = [name]
        if module_name:
            names.append(f"{module_name}.{name}")
        if len(tokens) == 1:
            head = name.split(".")[0]
            if key == "@exact":
                if "." not in name or not head[:1].isupper():
                    raise ValueError(
                        f"malformed @exact entry {entry!r}: a bare token "
                        "must name a 'Class.attr' field; use "
                        f"'{name} return' for a return sink"
                    )
                attrs.update(names)
            elif "." in name and head[:1].isupper() and name.count(".") == 1:
                # "Class.attr" is ambiguous between a field and a method;
                # register both readings — the analyzer checks whichever
                # kind the name turns out to be.
                self.deterministic_returns.update(names)
            else:
                returns.update(names)
        elif tokens[1] == "return":
            returns.update(names)
        else:
            for alias in names:
                params.setdefault(alias, set()).add(tokens[1])

    def _add_guard(self, module_name: str, entry: str) -> None:
        parts = str(entry).split()
        if len(parts) != 3 or parts[1] != "guarded_by":
            raise ValueError(
                f"malformed @guards entry {entry!r}: expected "
                "'<field> guarded_by <lock>'"
            )
        target, _, lock = parts
        head = target.split(".")[0]
        if head[:1].isupper():
            # "ClassName.attr guarded_by _lock": an attribute lock of the
            # same class unless the lock is already dotted.
            field_id = target
            lock_id = lock if "." in lock else f"{head}.{lock}"
        else:
            # "_global guarded_by _lock": module-level names.
            field_id = f"{module_name}.{target}" if module_name else target
            lock_id = f"{module_name}.{lock}" if module_name else lock
        self.guards[field_id] = lock_id

    # -- lookup ---------------------------------------------------------------

    def function(self, dotted: str) -> Optional[Signature]:
        return self.functions.get(dotted)

    def member_function(self, obj_type: str, member: str) -> Optional[Signature]:
        return self.functions.get(f"{obj_type}.{member}")

    def member_attribute(self, obj_type: str, member: str) -> Optional[AbstractValue]:
        return self.attributes.get(f"{obj_type}.{member}")

    def instance_of(self, dotted: str) -> Optional[str]:
        return self.object_classes.get(dotted)


def build_registry(
    extra: Sequence[Tuple[str, Mapping]] = (),
) -> SignatureRegistry:
    """Assemble the registry from the annotated core modules.

    ``extra`` supplies ``(module_name, signatures_dict)`` pairs harvested
    statically from the files under analysis, so fixture files and modules
    outside :data:`ANNOTATED_MODULES` can contribute signatures too.
    """
    registry = SignatureRegistry()
    for module_name in ANNOTATED_MODULES:
        try:
            module = importlib.import_module(module_name)
        except Exception:  # pragma: no cover - partial installs
            continue
        raw = getattr(module, "REPRO_SIGNATURES", None)
        if isinstance(raw, dict):
            registry.add_module_signatures(module_name, raw)
    for module_name, raw in extra:
        if isinstance(raw, dict):
            registry.add_module_signatures(module_name, raw)
    return registry


#: Convenience alias used by specs/tests.
SpecLike = Union[str, SpecDict]
