"""Switching delay of TSV lines under crosstalk.

The delay of line *i* for one transition is governed by its *effective*
switched capacitance — the Miller-factored sum

``C_eff,i = C_ii + sum_j C_ij * (1 - db_j / db_i)``

(0x for an aggressor moving with the victim, 1x for a quiet aggressor, 2x
for an anti-parallel aggressor), combined with the driver's on-resistance
and the TSV's distributed RC in an Elmore estimate. This is the metric the
crosstalk-avoidance codes of the paper's refs [13-15] bound by forbidding
anti-parallel transition patterns on adjacent TSVs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tsv.geometry import TSVArrayGeometry
from repro.tsv.rlc import tsv_resistance


def effective_capacitance(
    cap_matrix: np.ndarray, deltas: np.ndarray
) -> np.ndarray:
    """Miller effective capacitance per switching line for one transition.

    ``deltas`` holds signed transitions (-1, 0, +1). Entries for quiet
    lines are 0 (they do not have a delay this cycle).
    """
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    deltas = np.asarray(deltas, dtype=float)
    n = cap_matrix.shape[0]
    if cap_matrix.shape != (n, n) or deltas.shape != (n,):
        raise ValueError("capacitance matrix and deltas sizes do not match")
    coupling = cap_matrix.copy()
    np.fill_diagonal(coupling, 0.0)
    result = np.zeros(n)
    switching = deltas != 0.0
    for i in np.flatnonzero(switching):
        miller = 1.0 - deltas / deltas[i]
        miller[~switching] = 1.0  # quiet aggressors count once
        miller[i] = 0.0
        result[i] = cap_matrix[i, i] + float(coupling[i] @ miller)
    return result


def worst_case_delay_pattern(cap_matrix: np.ndarray, line: int) -> np.ndarray:
    """The transition vector maximizing line ``line``'s effective cap.

    The victim rises while every other line falls (anti-parallel), the
    classical 2x-Miller worst case.
    """
    n = np.asarray(cap_matrix).shape[0]
    deltas = -np.ones(n)
    deltas[line] = 1.0
    return deltas


def elmore_delay(
    geometry: TSVArrayGeometry,
    effective_cap: float,
    driver_resistance: float,
) -> float:
    """50 % Elmore delay of one TSV line [s].

    Lumped model: the driver resistance charges the full effective
    capacitance, the TSV's own resistance charges half of it (distributed
    RC), scaled by ln(2) for the 50 % point.
    """
    if effective_cap < 0.0:
        raise ValueError("effective capacitance must be >= 0")
    if driver_resistance <= 0.0:
        raise ValueError("driver resistance must be positive")
    r_tsv = tsv_resistance(geometry)
    return math.log(2.0) * (
        driver_resistance * effective_cap + r_tsv * effective_cap / 2.0
    )


def worst_case_delay(
    geometry: TSVArrayGeometry,
    cap_matrix: np.ndarray,
    driver_resistance: float,
) -> float:
    """Worst Elmore delay over all lines and aggressor patterns [s]."""
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    n = cap_matrix.shape[0]
    worst = 0.0
    for line in range(n):
        deltas = worst_case_delay_pattern(cap_matrix, line)
        c_eff = effective_capacitance(cap_matrix, deltas)[line]
        worst = max(worst, elmore_delay(geometry, c_eff, driver_resistance))
    return worst
