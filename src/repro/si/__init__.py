"""Signal-integrity analysis of TSV arrays.

The paper's introduction positions the assignment technique against two
other families: manufacturing fixes and crosstalk-avoidance *codes* (CAC),
which improve signal integrity but "increase the TSV count, leading to an
even increased overall TSV power". This subpackage provides the analysis
side of that argument:

``noise``
    Capacitive-divider crosstalk estimates per victim, worst-case aggressor
    patterns, and stream-level noise statistics.
``delay``
    Effective switched capacitance per transition and Elmore-style delay of
    the driver + 3pi-RLC path, including the worst-case (anti-parallel
    aggressor) pattern.
"""

from repro.si.noise import (
    stream_noise_statistics,
    victim_noise,
    worst_case_noise,
)
from repro.si.delay import (
    effective_capacitance,
    elmore_delay,
    worst_case_delay,
)

__all__ = [
    "victim_noise",
    "worst_case_noise",
    "stream_noise_statistics",
    "effective_capacitance",
    "elmore_delay",
    "worst_case_delay",
]
