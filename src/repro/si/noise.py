"""Capacitive crosstalk noise on quiet TSVs.

When aggressor TSVs switch while a victim holds its value, the coupling
capacitances divide the aggressor swing onto the victim. For a victim *i*
held by a (finite-impedance) driver, the classical charge-sharing peak is

``V_noise,i = sum_j C_ij * dV_j / C_T,i``

with ``C_T,i`` the victim's total capacitance — the standard capacitive
divider bound, exact in the limit of a slow victim driver and fast
aggressors, conservative otherwise. The transient engine
(:mod:`repro.circuit`) can reproduce the actual damped waveform; the tests
cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.switching import validate_bit_stream
from repro.tsv.matrices import total_capacitance


def victim_noise(
    cap_matrix: np.ndarray,
    deltas: np.ndarray,
    vdd: float = 1.0,
) -> np.ndarray:
    """Peak charge-sharing noise on every line for one transition [V].

    ``deltas`` holds the signed transitions (-1, 0, +1) of all lines; lines
    with a nonzero delta are aggressors (their own "noise" entry is reported
    as 0 — they are driven, not victims).
    """
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    deltas = np.asarray(deltas, dtype=float)
    n = cap_matrix.shape[0]
    if cap_matrix.shape != (n, n) or deltas.shape != (n,):
        raise ValueError("capacitance matrix and deltas sizes do not match")
    totals = total_capacitance(cap_matrix)
    coupling = cap_matrix.copy()
    np.fill_diagonal(coupling, 0.0)
    injected = coupling @ (deltas * vdd)
    with np.errstate(divide="ignore", invalid="ignore"):
        noise = injected / totals
    noise = np.nan_to_num(noise, nan=0.0)
    noise[deltas != 0.0] = 0.0
    return noise


def worst_case_noise(cap_matrix: np.ndarray, vdd: float = 1.0) -> np.ndarray:
    """Worst-case victim noise per line: all other lines switch together.

    The classical worst case for a quiet victim is every aggressor toggling
    in the same direction; the bound per line is then
    ``vdd * (C_T,i - C_ii) / C_T,i``.
    """
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    totals = total_capacitance(cap_matrix)
    coupling_sum = totals - np.diag(cap_matrix)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = vdd * coupling_sum / totals
    return np.nan_to_num(result, nan=0.0)


@dataclass(frozen=True)
class NoiseStatistics:
    """Stream-level victim-noise summary.

    Attributes
    ----------
    peak:
        The largest victim noise seen anywhere in the stream [V].
    peak_line:
        Which line saw it.
    mean:
        Mean over all victim events (quiet line during a switching cycle).
    exceed_fraction:
        Fraction of victim events above ``threshold``.
    threshold:
        The threshold used for ``exceed_fraction`` [V].
    """

    peak: float
    peak_line: int
    mean: float
    exceed_fraction: float
    threshold: float


def stream_noise_statistics(
    cap_matrix: np.ndarray,
    bits: np.ndarray,
    vdd: float = 1.0,
    threshold: float = 0.3,
) -> NoiseStatistics:
    """Victim-noise statistics of a physical line stream.

    Evaluates :func:`victim_noise` for every cycle transition and
    aggregates. ``threshold`` is the noise level counted as a violation
    (default 0.3 Vdd, a common static noise margin).
    """
    bits = validate_bit_stream(bits)
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    n = cap_matrix.shape[0]
    if bits.shape[1] != n:
        raise ValueError("stream width does not match the capacitance matrix")
    totals = total_capacitance(cap_matrix)
    coupling = cap_matrix.copy()
    np.fill_diagonal(coupling, 0.0)

    deltas = np.diff(bits.astype(np.int8), axis=0).astype(float)
    injected = deltas @ coupling.T * vdd
    with np.errstate(divide="ignore", invalid="ignore"):
        noise = np.abs(injected / totals[None, :])
    noise = np.nan_to_num(noise, nan=0.0)
    victims = deltas == 0.0
    noise = np.where(victims, noise, 0.0)

    flat_peak = int(np.argmax(noise))
    peak_cycle, peak_line = np.unravel_index(flat_peak, noise.shape)
    victim_values = noise[victims]
    mean = float(victim_values.mean()) if victim_values.size else 0.0
    exceed = (
        float((victim_values > threshold).mean()) if victim_values.size else 0.0
    )
    return NoiseStatistics(
        peak=float(noise[peak_cycle, peak_line]),
        peak_line=int(peak_line),
        mean=mean,
        exceed_fraction=exceed,
        threshold=threshold,
    )
