"""Serialization of experiment results and assignments.

Benchmarks and the CLI print human-readable tables; downstream tooling
(plotting scripts, regression trackers) wants machine-readable output. This
module converts the experiment row format and assignment reports to CSV and
JSON, and round-trips assignments through plain dictionaries so a chosen
mapping can be stored next to the RTL that implements it.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from repro.core.assignment import SignedPermutation
from repro.experiments.common import ExperimentRow


def rows_to_records(rows: Sequence[ExperimentRow]) -> List[Dict]:
    """Experiment rows as flat dictionaries (one per row)."""
    records = []
    for row in rows:
        record: Dict = {"label": row.label}
        record.update(row.values)
        records.append(record)
    return records


def rows_to_json(rows: Sequence[ExperimentRow], indent: int = 2) -> str:
    """Experiment rows as a JSON array string."""
    return json.dumps(rows_to_records(rows), indent=indent)


def rows_to_csv(rows: Sequence[ExperimentRow]) -> str:
    """Experiment rows as CSV text (union of all columns, label first)."""
    if not rows:
        return ""
    columns: List[str] = ["label"]
    for row in rows:
        for key in row.values:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for record in rows_to_records(rows):
        writer.writerow(record)
    return buffer.getvalue()


def assignment_to_dict(assignment: SignedPermutation) -> Dict:
    """JSON-friendly description of an assignment."""
    return {
        "line_of_bit": list(assignment.line_of_bit),
        "inverted": [bool(x) for x in assignment.inverted],
    }


def assignment_from_dict(data: Dict) -> SignedPermutation:
    """Inverse of :func:`assignment_to_dict` (validates the permutation)."""
    try:
        line_of_bit = data["line_of_bit"]
        inverted = data["inverted"]
    except (KeyError, TypeError) as exc:
        raise ValueError("missing assignment fields") from exc
    return SignedPermutation.from_sequence(line_of_bit, inverted)


def assignment_to_json(assignment: SignedPermutation, indent: int = 2) -> str:
    return json.dumps(assignment_to_dict(assignment), indent=indent)


def assignment_from_json(text: str) -> SignedPermutation:
    return assignment_from_dict(json.loads(text))


#: Exactness discipline (REP3xx, see ``docs/static_analysis.md``):
#: serialized reports are diffed across runs by the regression trackers,
#: so their bytes must be a pure function of the input rows.
REPRO_SIGNATURES = {
    "@deterministic": [
        "rows_to_records",
        "rows_to_json",
        "rows_to_csv",
        "assignment_to_dict",
        "assignment_to_json",
    ],
}
