"""2-D finite-difference electrostatic extraction of TSV array capacitances.

This module replaces the Ansys Q3D step of the paper's Sec. 2. It solves the
heterogeneous-permittivity Laplace equation ``div(eps grad phi) = 0`` on a
uniform grid over the array cross-section and computes the Maxwell
capacitance matrix per unit length, which is then scaled by the TSV length.

Material model (quasi-static, evaluated at the clock frequency):

* copper cores: perfect conductors (Dirichlet nodes);
* SiO2 liner annuli: ``eps_r = 3.9``;
* depletion annuli: carrier-free silicon, ``eps_r = 11.9``; their widths come
  from :class:`~repro.tsv.depletion.DepletionModel` evaluated at each TSV's
  average voltage ``p_i * Vdd`` — this is how the MOS effect enters;
* bulk silicon: a lossy dielectric. Below its relaxation frequency
  (~15 GHz at 10 S/m) silicon behaves mostly conductively; we use the
  magnitude of the complex permittivity ``eps * sqrt(1 + (sigma/(omega
  eps))^2)`` so that the bulk couples the TSVs much more strongly than the
  depleted regions do, while preserving the distance dependence of the
  coupling. The domain boundary is grounded (distant substrate contact).

This reproduces the four trends the assignment technique relies on: middle >
edge > corner total capacitance, corner-edge couplings largest, direct >
diagonal coupling, and capacitances shrinking as 1-bit probabilities grow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from repro import constants
from repro.tsv import matrices
from repro.tsv.depletion import DepletionModel
from repro.tsv.geometry import TSVArrayGeometry


def effective_silicon_permittivity(
    frequency: float = constants.F_CLOCK,
    sigma: float = constants.SIGMA_SI,
) -> float:
    """Relative permittivity magnitude of lossy silicon at ``frequency``.

    ``|eps_r*| = eps_r * sqrt(1 + (sigma / (omega eps))^2)`` — the standard
    quasi-static magnitude of the complex permittivity
    ``eps (1 - j sigma/(omega eps))``.
    """
    if frequency <= 0.0:
        raise ValueError("frequency must be positive")
    omega = 2.0 * math.pi * frequency
    loss_tangent = sigma / (omega * constants.EPS_R_SI * constants.EPS_0)
    return constants.EPS_R_SI * math.sqrt(1.0 + loss_tangent**2)


@dataclass
class FDMFieldSolver:
    """Field-solver extraction for one TSV array at given bit probabilities.

    Parameters
    ----------
    geometry:
        The TSV array to extract.
    probabilities:
        Per-TSV 1-bit probabilities (length ``n_tsvs``); default all 0.5.
        They set the depletion widths (MOS effect).
    frequency:
        Operating frequency for the lossy-silicon permittivity [Hz].
    resolution:
        Grid spacing [m]; defaults to half the liner thickness.
    margin:
        Grounded-boundary distance beyond the outermost liner [m]; defaults
        to ``5 * pitch`` (large enough that the edge-effect spread of the
        total capacitances is within ~2 % of its open-boundary limit).
    supersample:
        Material rasterization antialiasing: each node's permittivity is
        averaged over ``supersample x supersample`` sub-points.
    depletion_mode:
        Passed through to :class:`DepletionModel`.
    """

    geometry: TSVArrayGeometry
    probabilities: Optional[Sequence[float]] = None
    frequency: float = constants.F_CLOCK
    resolution: Optional[float] = None
    margin: Optional[float] = None
    supersample: int = 2
    depletion_mode: str = "deep"
    vdd: float = constants.V_DD

    def __post_init__(self) -> None:
        geom = self.geometry
        n = geom.n_tsvs
        if self.probabilities is None:
            self.probabilities = np.full(n, 0.5)
        self.probabilities = np.asarray(self.probabilities, dtype=float)
        if self.probabilities.shape != (n,):
            raise ValueError(
                f"need {n} probabilities, got shape {self.probabilities.shape}"
            )
        if ((self.probabilities < 0.0) | (self.probabilities > 1.0)).any():
            raise ValueError("probabilities must lie in [0, 1]")
        if self.resolution is None:
            self.resolution = geom.oxide_thickness / 2.0
        if self.margin is None:
            self.margin = 5.0 * geom.pitch
        if self.supersample < 1:
            raise ValueError("supersample must be >= 1")
        self._depletion = DepletionModel(
            radius=geom.radius,
            oxide_thickness=geom.oxide_thickness,
            mode=self.depletion_mode,
        )

    # -- rasterization --------------------------------------------------------

    def depletion_widths(self) -> np.ndarray:
        """Per-TSV depletion widths for the configured probabilities [m]."""
        return np.array(
            [
                self._depletion.width_for_probability(p, self.vdd)
                for p in self.probabilities
            ]
        )

    def _build_grid(self):
        """Rasterize materials; returns (conductor_id, eps_r, nx, ny).

        ``conductor_id`` is -1 for dielectric nodes and the TSV index for
        nodes inside a copper core. ``eps_r`` holds the (supersampled)
        relative permittivity of dielectric nodes.
        """
        geom = self.geometry
        h = self.resolution
        pos = geom.positions()
        lo = pos.min(axis=0) - geom.outer_radius - self.margin
        hi = pos.max(axis=0) + geom.outer_radius + self.margin
        nx = int(math.ceil((hi[0] - lo[0]) / h)) + 1
        ny = int(math.ceil((hi[1] - lo[1]) / h)) + 1

        xs = lo[0] + np.arange(nx) * h
        ys = lo[1] + np.arange(ny) * h
        gx, gy = np.meshgrid(xs, ys, indexing="ij")

        eps_si_eff = effective_silicon_permittivity(self.frequency)
        widths = self.depletion_widths()
        r_cu = geom.radius
        r_ox = geom.outer_radius

        # Supersampled permittivity assignment.
        ss = self.supersample
        offsets = (np.arange(ss) + 0.5) / ss - 0.5
        eps_accum = np.zeros((nx, ny))
        for ox_off in offsets:
            for oy_off in offsets:
                px = gx + ox_off * h
                py = gy + oy_off * h
                eps_sample = np.full((nx, ny), eps_si_eff)
                for i in range(geom.n_tsvs):
                    d2 = (px - pos[i, 0]) ** 2 + (py - pos[i, 1]) ** 2
                    r_dep = r_ox + widths[i]
                    eps_sample = np.where(
                        d2 <= r_dep**2, constants.EPS_R_SI, eps_sample
                    )
                    eps_sample = np.where(
                        d2 <= r_ox**2, constants.EPS_R_SIO2, eps_sample
                    )
                eps_accum += eps_sample
        eps_r = eps_accum / (ss * ss)

        # Conductor membership uses exact (non-supersampled) node positions.
        conductor_id = np.full((nx, ny), -1, dtype=np.int32)
        for i in range(geom.n_tsvs):
            d2 = (gx - pos[i, 0]) ** 2 + (gy - pos[i, 1]) ** 2
            conductor_id[d2 <= r_cu**2] = i
        return conductor_id, eps_r, nx, ny

    # -- solver ---------------------------------------------------------------

    def maxwell_matrix_per_length(self) -> np.ndarray:
        """Maxwell capacitance matrix per unit TSV length [F/m]."""
        geom = self.geometry
        conductor_id, eps_r, nx, ny = self._build_grid()
        n_cond = geom.n_tsvs

        # Unknown numbering: interior dielectric nodes only. Domain-boundary
        # nodes are grounded (phi = 0); conductor nodes are Dirichlet.
        is_boundary = np.zeros((nx, ny), dtype=bool)
        is_boundary[0, :] = is_boundary[-1, :] = True
        is_boundary[:, 0] = is_boundary[:, -1] = True
        is_conductor = conductor_id >= 0
        is_unknown = ~is_boundary & ~is_conductor
        unknown_index = np.full((nx, ny), -1, dtype=np.int64)
        unknown_index[is_unknown] = np.arange(int(is_unknown.sum()))
        n_unknown = int(is_unknown.sum())

        eps0 = constants.EPS_0
        eps = eps_r * eps0

        # Face conductances (per unit length in z): g = eps_face * (h*1)/h
        # = eps_face, with eps_face the harmonic mean of the two node eps.
        def face(eps_a, eps_b):
            return 2.0 * eps_a * eps_b / (eps_a + eps_b)

        gx_face = face(eps[:-1, :], eps[1:, :])  # between (i,j) and (i+1,j)
        gy_face = face(eps[:, :-1], eps[:, 1:])  # between (i,j) and (i,j+1)

        rows, cols, vals = [], [], []
        diag = np.zeros(n_unknown)
        # RHS contributions per conductor excitation are assembled from the
        # Dirichlet couplings; store (unknown_idx, conductor, weight).
        rhs_rows, rhs_conds, rhs_vals = [], [], []

        def add_edges(g, cond_a, cond_b, unk_a, unk_b):
            """Process a batch of faces between node sets a and b."""
            a_unk = unk_a >= 0
            b_unk = unk_b >= 0
            both = a_unk & b_unk
            # Off-diagonal entries for unknown-unknown faces.
            rows.append(unk_a[both])
            cols.append(unk_b[both])
            vals.append(g[both])
            rows.append(unk_b[both])
            cols.append(unk_a[both])
            vals.append(g[both])
            # Diagonal accumulations: every face touching an unknown node.
            np.add.at(diag, unk_a[a_unk], -g[a_unk])
            np.add.at(diag, unk_b[b_unk], -g[b_unk])
            # Unknown-conductor faces feed the RHS.
            a_cond_b = a_unk & (cond_b >= 0)
            rhs_rows.append(unk_a[a_cond_b])
            rhs_conds.append(cond_b[a_cond_b])
            rhs_vals.append(g[a_cond_b])
            b_cond_a = b_unk & (cond_a >= 0)
            rhs_rows.append(unk_b[b_cond_a])
            rhs_conds.append(cond_a[b_cond_a])
            rhs_vals.append(g[b_cond_a])

        # x-direction faces.
        add_edges(
            gx_face.ravel(),
            conductor_id[:-1, :].ravel(),
            conductor_id[1:, :].ravel(),
            unknown_index[:-1, :].ravel(),
            unknown_index[1:, :].ravel(),
        )
        # y-direction faces.
        add_edges(
            gy_face.ravel(),
            conductor_id[:, :-1].ravel(),
            conductor_id[:, 1:].ravel(),
            unknown_index[:, :-1].ravel(),
            unknown_index[:, 1:].ravel(),
        )

        rows_cat = np.concatenate(rows)
        cols_cat = np.concatenate(cols)
        vals_cat = np.concatenate(vals)
        diag_rows = np.arange(n_unknown)
        a_matrix = csc_matrix(
            (
                np.concatenate([vals_cat, diag]),
                (
                    np.concatenate([rows_cat, diag_rows]),
                    np.concatenate([cols_cat, diag_rows]),
                ),
            ),
            shape=(n_unknown, n_unknown),
        )
        lu = splu(a_matrix)

        rhs_rows_cat = np.concatenate(rhs_rows)
        rhs_conds_cat = np.concatenate(rhs_conds)
        rhs_vals_cat = np.concatenate(rhs_vals)

        # Solve once per conductor and accumulate charges.
        c_maxwell = np.zeros((n_cond, n_cond))
        # Precompute, per conductor, the flux stencil: for charge on
        # conductor i we need sum over faces (conductor-i node, neighbour)
        # of g * (phi_i - phi_neighbour) with phi_i the excitation value.
        # Reuse the same face lists: a face (unknown u, conductor c) carries
        # charge g * (V_c - phi_u) onto conductor c; a face between two
        # conductor nodes carries g * (V_c - V_c') onto c.
        cond_a_all, cond_b_all, g_all = [], [], []
        cond_a_all.append(conductor_id[:-1, :].ravel())
        cond_b_all.append(conductor_id[1:, :].ravel())
        g_all.append(gx_face.ravel())
        cond_a_all.append(conductor_id[:, :-1].ravel())
        cond_b_all.append(conductor_id[:, 1:].ravel())
        g_all.append(gy_face.ravel())
        cond_a_cat = np.concatenate(cond_a_all)
        cond_b_cat = np.concatenate(cond_b_all)
        g_cat = np.concatenate(g_all)
        unk_a_cat = np.concatenate(
            [unknown_index[:-1, :].ravel(), unknown_index[:, :-1].ravel()]
        )
        unk_b_cat = np.concatenate(
            [unknown_index[1:, :].ravel(), unknown_index[:, 1:].ravel()]
        )

        for exc in range(n_cond):
            rhs = np.zeros(n_unknown)
            sel = rhs_conds_cat == exc
            np.add.at(rhs, rhs_rows_cat[sel], -rhs_vals_cat[sel])
            phi = lu.solve(rhs)

            phi_a = np.where(
                cond_a_cat >= 0,
                (cond_a_cat == exc).astype(float),
                np.where(unk_a_cat >= 0, phi[np.clip(unk_a_cat, 0, None)], 0.0),
            )
            phi_b = np.where(
                cond_b_cat >= 0,
                (cond_b_cat == exc).astype(float),
                np.where(unk_b_cat >= 0, phi[np.clip(unk_b_cat, 0, None)], 0.0),
            )
            flux = g_cat * (phi_a - phi_b)
            for i in range(n_cond):
                q = flux[cond_a_cat == i].sum() - flux[cond_b_cat == i].sum()
                c_maxwell[i, exc] = q
        return matrices.symmetrize(c_maxwell)

    def capacitance_matrix(self) -> np.ndarray:
        """SPICE-form capacitance matrix of the array [F] (scaled by length)."""
        per_length = matrices.maxwell_to_spice(self.maxwell_matrix_per_length())
        return per_length * self.geometry.length
