"""Conversions between capacitance-matrix conventions.

Two conventions appear in the extraction flow:

*Maxwell form* — what a field solver produces: ``Q = C_maxwell @ V``. Diagonal
entries are positive (total capacitance of a conductor), off-diagonal entries
are negative (mutual terms).

*SPICE form* — what the power model (and a circuit netlist) consumes:
``C[i, i]`` is the lumped capacitance from conductor *i* to ground and
``C[i, j]`` (i != j) the positive coupling capacitor between conductors *i*
and *j*.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import check_capacitance_matrix, check_enabled


def maxwell_to_spice(c_maxwell: np.ndarray) -> np.ndarray:
    """Convert a Maxwell capacitance matrix to SPICE (ground + coupling) form.

    ``C_spice[i, j] = -C_maxwell[i, j]`` for ``i != j`` and
    ``C_spice[i, i] = sum_j C_maxwell[i, j]`` (the capacitance to ground).
    Tiny negative couplings produced by discretization noise are clipped
    to zero.
    """
    c = np.asarray(c_maxwell, dtype=float)
    _require_square(c)
    ground = c.sum(axis=1)
    spice = -c.copy()
    np.fill_diagonal(spice, ground)
    off = ~np.eye(c.shape[0], dtype=bool)
    spice[off] = np.clip(spice[off], 0.0, None)
    check_enabled(check_capacitance_matrix, spice, name="converted matrix")
    return spice


def spice_to_maxwell(c_spice: np.ndarray) -> np.ndarray:
    """Inverse of :func:`maxwell_to_spice`."""
    c = np.asarray(c_spice, dtype=float)
    _require_square(c)
    maxwell = -c.copy()
    off_diagonal_sum = c.sum(axis=1) - np.diag(c)
    np.fill_diagonal(maxwell, np.diag(c) + off_diagonal_sum)
    return maxwell


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + A.T) / 2``.

    Field-solver matrices are symmetric up to discretization error; the power
    model assumes exact symmetry.
    """
    a = np.asarray(matrix, dtype=float)
    _require_square(a)
    return 0.5 * (a + a.T)


def asymmetry(matrix: np.ndarray) -> float:
    """Relative asymmetry ``|A - A.T| / |A|`` (Frobenius norms).

    A quality metric for extraction results; should be well below 1 %.
    """
    a = np.asarray(matrix, dtype=float)
    _require_square(a)
    norm = np.linalg.norm(a)
    if norm == 0.0:
        return 0.0
    return float(np.linalg.norm(a - a.T) / norm)


def total_capacitance(c_spice: np.ndarray) -> np.ndarray:
    """Per-line total capacitance ``C_T,i`` (ground plus all couplings).

    This is the quantity the Spiral mapping sorts by (Eq. 12 of the paper).
    """
    c = np.asarray(c_spice, dtype=float)
    _require_square(c)
    check_enabled(check_capacitance_matrix, c)
    return c.sum(axis=1)


def _require_square(matrix: np.ndarray) -> None:
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). The ``spice`` / ``maxwell`` tags drive the
#: REP102 form check.
REPRO_SIGNATURES = {
    "maxwell_to_spice": {
        "c_maxwell": "(N, N) farad maxwell",
        "return": "(N, N) farad spice",
    },
    "spice_to_maxwell": {
        "c_spice": "(N, N) farad spice",
        "return": "(N, N) farad maxwell",
    },
    "symmetrize": {"matrix": "(N, N) any", "return": "(N, N) any"},
    "asymmetry": {"matrix": "(N, N) any", "return": "scalar dimensionless"},
    "total_capacitance": {
        "c_spice": "(N, N) farad spice",
        "return": "(N,) farad",
    },
}
