"""Process variation of TSV arrays and assignment robustness.

The optimal assignment is computed once, at design time, against *nominal*
capacitances — but fabricated TSVs vary: the copper radius and liner
thickness shift globally (lot/wafer level) and each via additionally
mismatches locally. A natural adoption question the paper does not answer
is whether the optimized assignment survives that variation. This module
answers it by Monte Carlo:

* :class:`VariationModel` samples perturbed capacitance matrices — global
  radius/liner deviations re-enter through the depletion physics, per-TSV
  mismatch scales each via's radial interface capacitance;
* :func:`assignment_robustness` evaluates a fixed assignment across the
  samples and reports the distribution of its reduction plus its *regret*
  against re-optimizing for each sample individually.

The headline result (see the robustness ablation bench): the assignment is
variation-tolerant — its mean reduction moves by well under a percentage
point for 5 % geometric sigma, because it exploits *structural* capacitance
differences (corner vs middle) that variation does not reorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import constants
from repro.tsv.arraycap import (
    STRONG_EDGE_PARAMETERS,
    CompactCapacitanceModel,
    SharingParameters,
)
from repro.tsv.geometry import TSVArrayGeometry


@dataclass(frozen=True)
class VariationModel:
    """Statistical model of TSV geometry variation.

    All sigmas are relative (fraction of the nominal value).

    Attributes
    ----------
    radius_sigma:
        Global (per-sample) copper radius deviation.
    oxide_sigma:
        Global liner-thickness deviation.
    mismatch_sigma:
        Per-TSV local mismatch of the radial interface capacitance.
    parameters:
        Sharing parameters of the compact model used for resampling.
    """

    radius_sigma: float = 0.05
    oxide_sigma: float = 0.05
    mismatch_sigma: float = 0.02
    parameters: SharingParameters = STRONG_EDGE_PARAMETERS

    def __post_init__(self) -> None:
        for name in ("radius_sigma", "oxide_sigma", "mismatch_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")

    def sample_geometry(
        self, geometry: TSVArrayGeometry, rng: np.random.Generator
    ) -> TSVArrayGeometry:
        """One global-variation sample of the array geometry."""
        radius = geometry.radius * max(
            1.0 + self.radius_sigma * rng.standard_normal(), 0.5
        )
        oxide = geometry.oxide_thickness * max(
            1.0 + self.oxide_sigma * rng.standard_normal(), 0.5
        )
        return TSVArrayGeometry(
            rows=geometry.rows,
            cols=geometry.cols,
            pitch=geometry.pitch,
            radius=radius,
            length=geometry.length,
            oxide_thickness=oxide,
        )

    def sample_capacitance(
        self,
        geometry: TSVArrayGeometry,
        rng: np.random.Generator,
        probabilities: Optional[Sequence[float]] = None,
        vdd: float = constants.V_DD,
    ) -> np.ndarray:
        """One Monte-Carlo capacitance matrix [F]."""
        perturbed = self.sample_geometry(geometry, rng)
        model = CompactCapacitanceModel(
            perturbed, parameters=self.parameters, vdd=vdd
        )
        scale = np.clip(
            1.0 + self.mismatch_sigma * rng.standard_normal(geometry.n_tsvs),
            0.5,
            1.5,
        )
        return model.capacitance_matrix(probabilities, radial_scale=scale)


@dataclass(frozen=True)
class RobustnessReport:
    """Monte-Carlo robustness of one assignment.

    Attributes
    ----------
    nominal_reduction:
        Reduction vs random wiring on the nominal capacitances.
    mean_reduction / std_reduction / worst_reduction:
        Distribution of the same metric across variation samples.
    mean_regret:
        Mean gap (in reduction points) to re-optimizing each sample with
        greedy descent — how much is left on the table by freezing the
        nominal assignment.
    n_samples:
        Number of Monte-Carlo samples.
    """

    nominal_reduction: float
    mean_reduction: float
    std_reduction: float
    worst_reduction: float
    mean_regret: float
    n_samples: int


def assignment_robustness(
    stats,
    geometry: TSVArrayGeometry,
    assignment,
    variation: VariationModel = VariationModel(),
    n_samples: int = 50,
    baseline_samples: int = 40,
    rng: Optional[np.random.Generator] = None,
    reoptimize: bool = True,
) -> RobustnessReport:
    """Monte-Carlo evaluation of a fixed assignment under variation.

    ``stats`` are the stream's :class:`~repro.stats.switching.BitStatistics`
    (bit domain); ``assignment`` is the design-time (nominal) choice.
    """
    from repro.core.assignment import SignedPermutation
    from repro.core.optimize import greedy_descent
    from repro.core.power import PowerModel

    if rng is None:
        rng = np.random.default_rng(2018)
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")

    def reduction(cap_matrix: np.ndarray) -> tuple:
        model = PowerModel(stats, cap_matrix)
        powers = [
            model.power(SignedPermutation.random(stats.n_lines, rng))
            for _ in range(baseline_samples)
        ]
        baseline = float(np.mean(powers))
        return model, 1.0 - model.power(assignment) / baseline, baseline

    nominal_cap = CompactCapacitanceModel(
        geometry, parameters=variation.parameters
    ).capacitance_matrix(stats.probabilities)
    _, nominal_red, _ = reduction(nominal_cap)

    reductions = np.empty(n_samples)
    regrets = np.empty(n_samples)
    for k in range(n_samples):
        cap = variation.sample_capacitance(
            geometry, rng, probabilities=stats.probabilities
        )
        model, red, baseline = reduction(cap)
        reductions[k] = red
        if reoptimize:
            refit = greedy_descent(
                model.power, assignment, with_inversions=True
            )
            regrets[k] = (1.0 - refit.power / baseline) - red
        else:
            regrets[k] = 0.0
    return RobustnessReport(
        nominal_reduction=float(nominal_red),
        mean_reduction=float(reductions.mean()),
        std_reduction=float(reductions.std()),
        worst_reduction=float(reductions.min()),
        mean_regret=float(regrets.mean()),
        n_samples=n_samples,
    )
