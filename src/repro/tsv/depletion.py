"""Cylindrical MOS depletion model around a TSV.

A TSV, its SiO2 liner and the p-doped substrate form a cylindrical MOS
junction. Sec. 2 of the paper models the depletion region around TSV ``i`` as
a zero-conductivity annulus whose width is found "by solving the exact
Poisson's equation for an average TSV voltage of ``pr_i * Vdd``", where
``pr_i`` is the 1-bit probability on that TSV. A higher 1-probability widens
the depletion region and thereby lowers every capacitance touching the TSV by
up to ~40 % — the *MOS effect* the optimal assignment exploits through bit
inversions.

Two solvers are provided:

* :meth:`DepletionModel.width` — the cylindrical full-depletion
  approximation: a closed potential-balance equation solved with Brent's
  method. Fast; used by default everywhere.
* :class:`ExactPoissonSolver` — a 1-D radial finite-difference Newton solver
  of the nonlinear Poisson equation with Boltzmann carrier statistics
  (the literal "exact Poisson"). Used in tests to validate the
  full-depletion approximation.

Both support *deep depletion* (no inversion layer — the usual assumption for
TSVs switching at GHz rates, where minority-carrier generation cannot follow)
and a *pinned* mode that clamps the surface potential at ``2 * phi_F``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

import numpy as np
from scipy.linalg import solve_banded
from scipy.optimize import brentq

from repro import constants

Mode = Literal["deep", "pinned"]


@dataclass(frozen=True)
class DepletionModel:
    """Depletion width and MOS capacitance of a single cylindrical TSV.

    Parameters
    ----------
    radius:
        Copper core radius [m].
    oxide_thickness:
        SiO2 liner thickness [m].
    doping:
        Acceptor density of the p-substrate [1/m^3]. Defaults to the density
        matching the paper's 10 S/m substrate conductivity.
    v_flatband:
        Flat-band voltage of the metal/oxide/p-Si junction [V].
    mode:
        ``"deep"`` (deep depletion, default) or ``"pinned"`` (surface
        potential clamped at the strong-inversion value ``2 * phi_F``).
    temperature:
        Junction temperature [K]. Enters through the thermal voltage and
        the intrinsic carrier density (Fermi potential); matters most in
        ``"pinned"`` mode, where it sets the inversion onset.
    """

    radius: float
    oxide_thickness: float
    doping: float = constants.N_ACCEPTOR_DEFAULT
    v_flatband: float = constants.V_FLATBAND
    mode: Mode = "deep"
    temperature: float = constants.TEMPERATURE

    def __post_init__(self) -> None:
        if self.radius <= 0.0 or self.oxide_thickness <= 0.0:
            raise ValueError("radius and oxide_thickness must be positive")
        if self.doping <= 0.0:
            raise ValueError("doping must be positive")
        if self.mode not in ("deep", "pinned"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.temperature <= 0.0:
            raise ValueError("temperature must be positive (kelvin)")

    # -- derived quantities ---------------------------------------------------

    @property
    def oxide_outer_radius(self) -> float:
        """Radius of the oxide/silicon interface [m]."""
        return self.radius + self.oxide_thickness

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the junction temperature [V]."""
        return constants.thermal_voltage(self.temperature)

    @property
    def fermi_potential(self) -> float:
        """Bulk Fermi potential ``phi_F = Vt * ln(N_A / n_i)`` [V]."""
        return self.thermal_voltage * math.log(
            self.doping / constants.intrinsic_carrier_density(self.temperature)
        )

    @property
    def oxide_capacitance_per_length(self) -> float:
        """Cylindrical liner capacitance per unit length [F/m]."""
        eps_ox = constants.EPS_R_SIO2 * constants.EPS_0
        return 2.0 * math.pi * eps_ox / math.log(self.oxide_outer_radius / self.radius)

    # -- full-depletion approximation ----------------------------------------

    def _surface_potential(self, r_dep: float) -> float:
        """Potential drop across a depletion annulus reaching out to ``r_dep``.

        Integrates the cylindrical field of the fully depleted annulus
        ``[r_ox, r_dep]``:  ``E(r) = q*N_A*(r_dep^2 - r^2) / (2*eps_si*r)``.
        """
        r_ox = self.oxide_outer_radius
        eps_si = constants.EPS_R_SI * constants.EPS_0
        pref = constants.Q_ELEMENTARY * self.doping / (2.0 * eps_si)
        return pref * (
            r_dep**2 * math.log(r_dep / r_ox) - (r_dep**2 - r_ox**2) / 2.0
        )

    def _oxide_drop(self, r_dep: float) -> float:
        """Voltage across the liner for the depletion charge out to ``r_dep``."""
        r_ox = self.oxide_outer_radius
        charge_per_length = (
            constants.Q_ELEMENTARY * self.doping * math.pi * (r_dep**2 - r_ox**2)
        )
        return charge_per_length / self.oxide_capacitance_per_length

    def width(self, voltage: float) -> float:
        """Depletion width [m] for a (time-averaged) TSV voltage [V].

        Solves the cylindrical potential balance
        ``V - V_fb = psi_s(w) + V_ox(w)`` for the depletion width ``w``. For
        voltages at or below flat band the junction is in accumulation and the
        width is zero. In ``"pinned"`` mode the surface potential term is
        clamped at ``2 * phi_F``.
        """
        v_eff = voltage - self.v_flatband
        if v_eff <= 0.0:
            return 0.0
        r_ox = self.oxide_outer_radius
        lo = r_ox * (1.0 + 1e-12)
        hi = r_ox + 50e-6

        def balance(r_dep: float) -> float:
            return self._surface_potential(r_dep) + self._oxide_drop(r_dep) - v_eff

        if balance(hi) < 0.0:  # pragma: no cover - absurd voltages only
            raise ValueError(f"depletion width search bracket too small at {voltage} V")
        r_dep = brentq(balance, lo, hi, xtol=1e-12)

        if self.mode == "pinned":
            # In thermal equilibrium the inversion layer pins the surface
            # potential at 2*phi_F: beyond that point additional applied
            # voltage drops across the oxide via inversion charge and the
            # depletion region stops growing.
            psi_max = 2.0 * self.fermi_potential
            if self._surface_potential(r_dep) > psi_max:
                r_dep = brentq(
                    lambda r: self._surface_potential(r) - psi_max,
                    lo, hi, xtol=1e-12,
                )
        return r_dep - r_ox

    def width_for_probability(self, probability: float, vdd: float = constants.V_DD) -> float:
        """Depletion width for a 1-bit probability (average voltage ``p*Vdd``)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.width(probability * vdd)

    # -- capacitances ---------------------------------------------------------

    def depletion_capacitance_per_length(self, voltage: float) -> float:
        """Cylindrical depletion capacitance per unit length [F/m].

        Infinite (no depletion barrier) when the junction is in accumulation.
        """
        w = self.width(voltage)
        if w <= 0.0:
            return math.inf
        r_ox = self.oxide_outer_radius
        eps_si = constants.EPS_R_SI * constants.EPS_0
        return 2.0 * math.pi * eps_si / math.log((r_ox + w) / r_ox)

    def mos_capacitance_per_length(self, probability: float, vdd: float = constants.V_DD) -> float:
        """Series oxide + depletion capacitance per unit length [F/m].

        This is the TSV's radial interface capacitance into the conductive
        substrate — the quantity the compact array model distributes among
        the neighbouring TSVs.
        """
        c_ox = self.oxide_capacitance_per_length
        c_dep = self.depletion_capacitance_per_length(probability * vdd)
        if math.isinf(c_dep):
            return c_ox
        return c_ox * c_dep / (c_ox + c_dep)


class ExactPoissonSolver:
    """1-D radial nonlinear Poisson solver for the TSV MOS junction.

    Discretizes ``(1/r) d/dr (r eps(r) dphi/dr) = -rho(phi)`` on a uniform
    radial grid spanning the liner and several microns of substrate, with
    Dirichlet conditions ``phi(r_metal) = V - V_fb`` and ``phi(r_far) = 0``
    (bulk reference), and solves it with damped Newton iterations. Carriers
    follow Boltzmann statistics; in deep-depletion mode the electron
    (inversion) term is dropped.

    This is the literal "exact Poisson's equation" of the paper's Sec. 2 and
    serves as the accuracy reference for the much faster
    :class:`DepletionModel` full-depletion approximation.
    """

    def __init__(
        self,
        model: DepletionModel,
        extent: float = 8.0e-6,
        step: float | None = None,
        max_iterations: int = 200,
        tolerance: float = 1e-10,
    ) -> None:
        self.model = model
        self.extent = extent
        self.step = step if step is not None else min(model.oxide_thickness / 8.0, 5e-9)
        self.max_iterations = max_iterations
        self.tolerance = tolerance

        r_start = model.radius
        r_stop = model.oxide_outer_radius + extent
        n = int(round((r_stop - r_start) / self.step)) + 1
        self.r = np.linspace(r_start, r_stop, n)
        # Permittivity on half-grid points (between nodes).
        r_half = 0.5 * (self.r[:-1] + self.r[1:])
        eps = np.where(
            r_half < model.oxide_outer_radius,
            constants.EPS_R_SIO2 * constants.EPS_0,
            constants.EPS_R_SI * constants.EPS_0,
        )
        self._eps_half = eps
        self._in_silicon = self.r >= model.oxide_outer_radius

    # -- charge model ---------------------------------------------------------

    def _charge_density(self, phi: np.ndarray) -> np.ndarray:
        """Space-charge density rho(phi) [C/m^3] on the grid."""
        m = self.model
        vt = m.thermal_voltage
        n0 = constants.intrinsic_carrier_density(m.temperature) ** 2 / m.doping
        # Clip the Boltzmann exponents to keep Newton iterations finite.
        x = np.clip(phi / vt, -60.0, 60.0)
        p = m.doping * np.exp(-x)
        if m.mode == "deep":
            n = np.zeros_like(p)
            n0_eff = 0.0
        else:
            n = n0 * np.exp(x)
            n0_eff = n0
        rho = constants.Q_ELEMENTARY * (p - n - m.doping + n0_eff)
        return np.where(self._in_silicon, rho, 0.0)

    def _charge_density_derivative(self, phi: np.ndarray) -> np.ndarray:
        """d rho / d phi, for the Newton Jacobian."""
        m = self.model
        vt = m.thermal_voltage
        n0 = constants.intrinsic_carrier_density(m.temperature) ** 2 / m.doping
        x = np.clip(phi / vt, -60.0, 60.0)
        d = -m.doping * np.exp(-x) / vt
        if m.mode != "deep":
            d = d - n0 * np.exp(x) / vt
        d = constants.Q_ELEMENTARY * d
        return np.where(self._in_silicon, d, 0.0)

    # -- solver ---------------------------------------------------------------

    def solve(self, voltage: float) -> np.ndarray:
        """Potential profile phi(r) [V] for a TSV voltage [V]."""
        m = self.model
        r = self.r
        h = self.step
        n = len(r)
        v_left = voltage - m.v_flatband

        phi = np.linspace(v_left, 0.0, n)

        # Precompute the linear (Laplacian) part:
        #   (1/r_i) * [ r_{i+1/2} eps (phi_{i+1}-phi_i) - r_{i-1/2} eps (phi_i-phi_{i-1}) ] / h^2
        r_half = 0.5 * (r[:-1] + r[1:])
        a_east = r_half[1:] * self._eps_half[1:] / (h * h * r[1:-1])
        a_west = r_half[:-1] * self._eps_half[:-1] / (h * h * r[1:-1])

        for _ in range(self.max_iterations):
            rho = self._charge_density(phi)
            drho = self._charge_density_derivative(phi)
            residual = (
                a_east * (phi[2:] - phi[1:-1])
                - a_west * (phi[1:-1] - phi[:-2])
                + rho[1:-1]
            )
            # Banded Jacobian (tridiagonal) for the interior nodes.
            diag = -(a_east + a_west) + drho[1:-1]
            upper = np.concatenate(([0.0], a_east[:-1]))
            lower = np.concatenate((a_west[1:], [0.0]))
            ab = np.vstack((upper, diag, lower))
            delta = solve_banded((1, 1), ab, -residual)
            # Damp large Newton steps (strong nonlinearity near flat band).
            max_step = 0.5
            scale = min(1.0, max_step / max(float(np.max(np.abs(delta))), 1e-30))
            phi[1:-1] += scale * delta
            if float(np.max(np.abs(delta))) < self.tolerance:
                break
        phi[0] = v_left
        phi[-1] = 0.0
        return phi

    def depletion_width(self, voltage: float, recovery: float = 0.5) -> float:
        """Depletion width [m]: where holes recover to ``recovery * N_A``.

        Returns 0 when the silicon surface is not depleted (accumulation).
        """
        phi = self.solve(voltage)
        m = self.model
        vt = m.thermal_voltage
        in_si = self._in_silicon
        p = m.doping * np.exp(-np.clip(phi / vt, -60.0, 60.0))
        depleted = in_si & (p < recovery * m.doping)
        if not depleted.any():
            return 0.0
        last = int(np.max(np.nonzero(depleted)[0]))
        return float(self.r[last] - m.oxide_outer_radius)
