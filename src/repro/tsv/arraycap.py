"""Compact E-field-sharing capacitance model for TSV arrays.

The FDM extractor (:mod:`repro.tsv.fdm`) is accurate but costs seconds per
matrix. The optimization loops and benchmarks need many matrices, so this
module provides a closed-form model in the spirit of the paper's own
high-level estimation reference [6]:

* Every TSV has a radial MOS interface capacitance per unit length
  ``c_i(p_i)`` (oxide in series with the probability-dependent depletion
  capacitance) from :class:`~repro.tsv.depletion.DepletionModel`.
* That capacitance is *shared* among the electrodes that terminate the TSV's
  field: the other TSVs (weight falling with distance as a power law) and the
  array environment (distant grounded substrate). A TSV at the array rim has
  fewer close aggressors, so each remaining neighbour receives a *larger*
  share — the "reduced E-field sharing" that makes corner-edge couplings the
  biggest in the array [5] — while the weakly coupling environment makes its
  *total* capacitance the smallest.
* The pair capacitance is the series combination of the two facing shares;
  the ground capacitance is the environment share scaled by a reach factor.

Five scalar parameters (power-law exponent, missing-neighbour weight,
far-field weight, environment reach, coupling-path efficiency) are calibrated
once against FDM extractions; :func:`calibrate` re-runs that fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro import constants
from repro.tsv.depletion import DepletionModel
from repro.tsv.geometry import TSVArrayGeometry

#: Number of immediate-neighbour slots of an interior TSV.
_FULL_DIRECT_SLOTS = 4
_FULL_DIAGONAL_SLOTS = 4


@dataclass(frozen=True)
class SharingParameters:
    """Calibration constants of the E-field-sharing model.

    Attributes
    ----------
    alpha:
        Power-law exponent of the pairwise sharing weight
        ``(pitch / distance) ** alpha``.
    gamma_missing:
        Weight the environment inherits per missing immediate-neighbour slot
        (relative to the slot's own weight).
    gamma_far:
        Baseline environment weight every TSV has regardless of position
        (distant substrate / package ground).
    delta_env:
        Efficiency of the environment as a field sink: the ground capacitance
        is ``delta_env`` times the environment share of the radial
        capacitance.
    kappa:
        Coupling-path efficiency in [0.5, 1]. A flux tube between two TSVs
        crosses both interface capacitances (efficiency 0.5, pure series) but
        the lossy substrate in between partially grounds it, pushing the
        effective efficiency above the series limit.
    """

    alpha: float
    gamma_missing: float
    gamma_far: float
    delta_env: float
    kappa: float

    def as_array(self) -> np.ndarray:
        return np.array(
            [self.alpha, self.gamma_missing, self.gamma_far, self.delta_env,
             self.kappa]
        )

    @classmethod
    def from_array(cls, values: Sequence[float]) -> "SharingParameters":
        alpha, gamma_missing, gamma_far, delta_env, kappa = values
        return cls(alpha, gamma_missing, gamma_far, delta_env, kappa)


#: Parameters fitted against FDM extractions of 3x3, 4x4 and 5x5 arrays at
#: the paper's geometries (r=2 um/d=8 um, r=1 um/d=4 um, r=1 um/d=4.5 um) at
#: p=0.5 and 3 GHz. Regenerate with :func:`calibrate`.
DEFAULT_PARAMETERS = SharingParameters(
    alpha=2.474,
    gamma_missing=0.529,
    gamma_far=0.596,
    delta_env=0.575,
    kappa=0.665,
)

#: 3-D-corrected profile: same sharing structure, but with the environment
#: sink weakened. The 2-D reference solver grounds the domain at a lateral
#: boundary a few pitches away, which lets rim TSVs recover most of their
#: "missing neighbour" flux as ground capacitance. In the real 3-D stack the
#: unshared flux of rim TSVs must reach the wafer surfaces — about half a
#: TSV length (~25 um) away instead of one pitch (~4-8 um) — so the
#: environment is several times less effective as a sink:
#: ``delta_env_3d ~ delta_env_2d * pitch / (length / 2)``. This reproduces
#: the pronounced corner < edge < middle spread of the paper's reference
#: [5] (around 30 % corner-to-middle) and is the profile the experiment
#: suite uses (extractor method ``"compact3d"``).
STRONG_EDGE_PARAMETERS = SharingParameters(
    alpha=2.474,
    gamma_missing=0.529,
    gamma_far=0.596,
    delta_env=0.2,
    kappa=0.665,
)


class CompactCapacitanceModel:
    """Fast closed-form capacitance matrix for a TSV array.

    Parameters
    ----------
    geometry:
        The array.
    parameters:
        Sharing calibration constants; defaults to the shipped FDM fit.
    vdd:
        Supply voltage; with the 1-bit probability it sets the average TSV
        voltage that drives the depletion width.
    depletion_mode:
        Passed to :class:`DepletionModel`.
    """

    def __init__(
        self,
        geometry: TSVArrayGeometry,
        parameters: SharingParameters = DEFAULT_PARAMETERS,
        vdd: float = constants.V_DD,
        depletion_mode: str = "deep",
    ) -> None:
        self.geometry = geometry
        self.parameters = parameters
        self.vdd = vdd
        self._depletion = DepletionModel(
            radius=geometry.radius,
            oxide_thickness=geometry.oxide_thickness,
            mode=depletion_mode,
        )
        self._distances = self._distance_matrix()

    def _distance_matrix(self) -> np.ndarray:
        pos = self.geometry.positions()
        diff = pos[:, None, :] - pos[None, :, :]
        return np.linalg.norm(diff, axis=2)

    # -- model ----------------------------------------------------------------

    def radial_capacitances(self, probabilities: np.ndarray) -> np.ndarray:
        """Per-TSV MOS interface capacitance per unit length [F/m]."""
        return np.array(
            [
                self._depletion.mos_capacitance_per_length(p, self.vdd)
                for p in probabilities
            ]
        )

    def _pair_weights(self) -> np.ndarray:
        """Unnormalized sharing weights ``u_ij`` for all TSV pairs."""
        p = self.parameters
        d = self._distances
        with np.errstate(divide="ignore"):
            u = (self.geometry.pitch / np.where(d > 0.0, d, np.inf)) ** p.alpha
        np.fill_diagonal(u, 0.0)
        return u

    def _environment_weights(self) -> np.ndarray:
        """Unnormalized environment weight ``u_env,i`` per TSV."""
        p = self.parameters
        geom = self.geometry
        diag_weight = 2.0 ** (-p.alpha / 2.0)
        env = np.empty(geom.n_tsvs)
        for i in range(geom.n_tsvs):
            missing_direct = _FULL_DIRECT_SLOTS - len(geom.direct_neighbors(i))
            missing_diag = _FULL_DIAGONAL_SLOTS - len(geom.diagonal_neighbors(i))
            env[i] = (
                p.gamma_missing * (missing_direct + missing_diag * diag_weight)
                + p.gamma_far
            )
        return env

    def capacitance_matrix(
        self,
        probabilities: Optional[Sequence[float]] = None,
        radial_scale: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """SPICE-form capacitance matrix [F] for given 1-bit probabilities.

        ``probabilities`` defaults to 0.5 on every TSV (balanced data).
        ``radial_scale`` optionally multiplies each TSV's radial interface
        capacitance — the hook the process-variation model
        (:mod:`repro.tsv.variation`) uses for per-via mismatch.
        """
        geom = self.geometry
        n = geom.n_tsvs
        if probabilities is None:
            probabilities = np.full(n, 0.5)
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (n,):
            raise ValueError(f"need {n} probabilities, got {probabilities.shape}")
        if ((probabilities < 0.0) | (probabilities > 1.0)).any():
            raise ValueError("probabilities must lie in [0, 1]")

        c_radial = self.radial_capacitances(probabilities)
        if radial_scale is not None:
            radial_scale = np.asarray(radial_scale, dtype=float)
            if radial_scale.shape != (n,):
                raise ValueError(
                    f"need {n} radial scale factors, got {radial_scale.shape}"
                )
            if (radial_scale <= 0.0).any():
                raise ValueError("radial scale factors must be positive")
            c_radial = c_radial * radial_scale
        u = self._pair_weights()
        u_env = self._environment_weights()
        denom = u.sum(axis=1) + u_env
        shares = u / denom[:, None]  # f_ij, rows sum with env share to 1

        # Facing shares combined along the flux tube between the two TSVs:
        # harmonic mean (pure series through both interfaces) scaled by the
        # coupling-path efficiency kappa.
        a = c_radial[:, None] * shares
        b = c_radial[None, :] * shares.T
        with np.errstate(divide="ignore", invalid="ignore"):
            coupling = self.parameters.kappa * 2.0 * a * b / (a + b)
        coupling = np.nan_to_num(coupling, nan=0.0)

        env_share = u_env / denom
        ground = self.parameters.delta_env * c_radial * env_share

        c_matrix = coupling
        np.fill_diagonal(c_matrix, ground)
        return c_matrix * geom.length


def calibrate(
    geometries: Sequence[TSVArrayGeometry],
    reference_matrices: Optional[Sequence[np.ndarray]] = None,
    reference_factory: Optional[
        Callable[[TSVArrayGeometry], np.ndarray]
    ] = None,
    initial: SharingParameters = DEFAULT_PARAMETERS,
) -> SharingParameters:
    """Fit the sharing parameters to reference (FDM) capacitance matrices.

    Provide either precomputed ``reference_matrices`` (SPICE form, aligned
    with ``geometries``) or a ``reference_factory`` that extracts one (e.g.
    ``lambda g: FDMFieldSolver(g).capacitance_matrix()``).

    Returns the fitted :class:`SharingParameters`. Each matrix is normalized
    by its mean before fitting so that arrays of different absolute
    capacitance contribute equally.
    """
    from scipy.optimize import least_squares

    if reference_matrices is None:
        if reference_factory is None:
            raise ValueError(
                "provide reference_matrices or a reference_factory"
            )
        reference_matrices = [reference_factory(g) for g in geometries]
    if len(reference_matrices) != len(geometries):
        raise ValueError("one reference matrix per geometry required")

    def residuals(x: np.ndarray) -> np.ndarray:
        params = SharingParameters.from_array(x)
        out = []
        for geom, ref in zip(geometries, reference_matrices):
            model = CompactCapacitanceModel(geom, parameters=params)
            c = model.capacitance_matrix()
            scale = np.mean(np.abs(ref))
            out.append(((c - ref) / scale).ravel())
        return np.concatenate(out)

    fit = least_squares(
        residuals,
        initial.as_array(),
        bounds=([1.0, 0.0, 0.0, 0.0, 0.5], [4.0, 5.0, 5.0, 2.0, 1.0]),
    )
    return SharingParameters.from_array(fit.x)
