"""TSV electrical substrate: geometry, depletion physics, capacitance extraction.

This subpackage replaces the commercial tooling the paper relied on
(Ansys Q3D) with an in-repo stack:

``geometry``
    Regular M x N TSV array placement and neighbour topology.
``depletion``
    Cylindrical MOS deep-depletion solver (the "exact Poisson" step).
``fdm``
    2-D finite-difference electrostatic field solver used as reference
    extractor.
``arraycap``
    Fast E-field-sharing compact capacitance model calibrated against the
    FDM solver.
``extractor``
    Front-end that picks an extraction method and handles probability
    dependence and caching.
``capmodel``
    The paper's linear capacitance/bit-probability model (Eq. 6/7/9).
``rlc``
    TSV series parasitics and 3-pi RLC netlist generation for circuit-level
    validation.
"""

from repro.tsv.geometry import PositionClass, TSVArrayGeometry
from repro.tsv.depletion import DepletionModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.capmodel import LinearCapacitanceModel

__all__ = [
    "PositionClass",
    "TSVArrayGeometry",
    "DepletionModel",
    "CapacitanceExtractor",
    "LinearCapacitanceModel",
]
