"""TSV series parasitics and 3pi-RLC netlist generation (paper Sec. 2/7).

For the final validation the paper extracts "full 3pi-RLC circuits of the
TSV arrays" and simulates them in Spectre. This module does the same for
our transient engine:

* series resistance of the copper cylinder, ``R = rho l / (pi r^2)``;
* partial self-inductance of a cylindrical conductor,
  ``L = mu0 l / (2 pi) (ln(2l/r) - 1)``;
* an n-pi ladder (default 3pi): the TSV is split into ``n`` series R-L
  segments with the ground and coupling capacitances distributed over the
  ``n + 1`` intermediate nodes in the classic 1/(2n), 1/n, ..., 1/(2n)
  pattern. Mutual inductances between TSVs are neglected — at the paper's
  3 GHz clock the capacitive coupling dominates the power.

:func:`build_array_netlist` wires one driver per line at the top node and a
receiver load at the bottom node, producing a netlist the
:class:`~repro.circuit.transient.TransientSolver` can integrate directly.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro import constants
from repro.circuit.driver import DriverModel
from repro.circuit.netlist import Netlist
from repro.tsv.geometry import TSVArrayGeometry


def tsv_resistance(geometry: TSVArrayGeometry) -> float:
    """DC series resistance of one TSV [Ohm]."""
    area = math.pi * geometry.radius**2
    return constants.RHO_COPPER * geometry.length / area


def tsv_inductance(geometry: TSVArrayGeometry) -> float:
    """Partial self-inductance of one TSV [H]."""
    l, r = geometry.length, geometry.radius
    return constants.MU_0 * l / (2.0 * math.pi) * (math.log(2.0 * l / r) - 1.0)


def _node(line: int, segment: int):
    """Internal node naming: (line, ladder position)."""
    return ("tsv", line, segment)


def build_array_netlist(
    geometry: TSVArrayGeometry,
    cap_matrix: np.ndarray,
    bit_streams: np.ndarray,
    driver: DriverModel,
    cycle_time: float,
    n_segments: int = 3,
    receiver_capacitance: float = 0.5e-15,
    inverted: Optional[Sequence[bool]] = None,
) -> Netlist:
    """Full driver + n-pi RLC + receiver netlist for a TSV array.

    Parameters
    ----------
    geometry:
        The array (sets R and L of each TSV).
    cap_matrix:
        SPICE-form capacitance matrix [F] (total, full TSV length).
    bit_streams:
        Physical line data, shape ``(cycles, n_tsvs)`` — apply the
        assignment's routing *before* calling (or pass ``inverted`` to let
        the inverting drivers handle the inversions).
    driver:
        Driver template; per-line inverting variants are derived from it.
    cycle_time:
        Clock period [s].
    n_segments:
        Number of pi sections (3 reproduces the paper's model).
    receiver_capacitance:
        Load at the far end of each TSV [F].
    inverted:
        Per-line flags selecting inverting drivers.
    """
    cap_matrix = np.asarray(cap_matrix, dtype=float)
    n = geometry.n_tsvs
    if cap_matrix.shape != (n, n):
        raise ValueError("capacitance matrix does not match the array")
    bit_streams = np.asarray(bit_streams)
    if bit_streams.ndim != 2 or bit_streams.shape[1] != n:
        raise ValueError(f"bit stream must have shape (cycles, {n})")
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    if inverted is None:
        inverted = [False] * n
    if len(inverted) != n:
        raise ValueError("inverted flags must match the line count")

    netlist = Netlist()
    r_seg = tsv_resistance(geometry) / n_segments
    l_seg = tsv_inductance(geometry) / n_segments

    # Capacitance distribution weights over the n+1 ladder nodes.
    weights = np.full(n_segments + 1, 1.0 / n_segments)
    weights[0] = weights[-1] = 1.0 / (2.0 * n_segments)

    for line in range(n):
        drv = DriverModel(
            strength=driver.strength,
            unit_resistance=driver.unit_resistance,
            unit_input_capacitance=driver.unit_input_capacitance,
            unit_leakage=driver.unit_leakage,
            rise_time=driver.rise_time,
            vdd=driver.vdd,
            inverting=bool(inverted[line]),
        )
        drv.attach(
            netlist, _node(line, 0), bit_streams[:, line], cycle_time,
            name=f"line{line}",
        )
        for seg in range(n_segments):
            mid = ("tsv", line, seg, "rl")
            netlist.resistor(_node(line, seg), mid, r_seg)
            netlist.inductor(mid, _node(line, seg + 1), l_seg)
        netlist.capacitor(
            _node(line, n_segments), 0, receiver_capacitance
        )

    for seg in range(n_segments + 1):
        for i in range(n):
            ground_part = cap_matrix[i, i] * weights[seg]
            if ground_part > 0.0:
                netlist.capacitor(_node(i, seg), 0, ground_part)
            for j in range(i + 1, n):
                coupling_part = cap_matrix[i, j] * weights[seg]
                if coupling_part > 0.0:
                    netlist.capacitor(
                        _node(i, seg), _node(j, seg), coupling_part
                    )
    return netlist
