"""Capacitance extraction front-end.

Everything above the TSV substrate (power model, optimizers, benchmarks)
requests capacitance matrices through :class:`CapacitanceExtractor`, which

* selects the extraction method — ``"fdm"`` (the reference field solver) or
  ``"compact"`` (the calibrated E-field-sharing model);
* handles the probability dependence of the matrix (the MOS effect);
* memoizes results in memory and, optionally, on disk, because the FDM
  solver costs seconds per matrix while benchmark sweeps ask for the same
  geometry thousands of times.

The disk cache is *self-healing*: every entry is written atomically as an
``.npz`` bundle carrying a format version and a content checksum, and a
corrupted, truncated or stale entry is detected on read, logged, evicted
and transparently recomputed (see ``docs/robustness.md``).
"""

from __future__ import annotations

import hashlib
import io
import logging
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.runtime.artifacts import atomic_write_bytes
from repro.runtime.faults import fault_point
from repro.tsv.arraycap import (
    DEFAULT_PARAMETERS,
    STRONG_EDGE_PARAMETERS,
    CompactCapacitanceModel,
    SharingParameters,
)
from repro.tsv.geometry import TSVArrayGeometry

logger = logging.getLogger("repro.tsv.extractor")

#: Environment variable overriding the on-disk cache location.
CACHE_ENV_VAR = "REPRO_TSV_CACHE"

#: Bump when solver defaults or the cache file layout change in ways that
#: invalidate cached matrices (v3: checksummed .npz bundles).
_CACHE_VERSION = 3


def default_cache_dir() -> Optional[Path]:
    """Directory for the on-disk extraction cache (None disables it)."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env == "":
        return None
    if env is not None:
        return Path(env)
    return Path.home() / ".cache" / "repro_tsv"


class CapacitanceExtractor:
    """Cached, probability-aware capacitance matrices for one TSV array.

    Parameters
    ----------
    geometry:
        The array to extract.
    method:
        ``"fdm"`` for the finite-difference reference solver, ``"compact"``
        for the calibrated closed-form model, or ``"compact3d"`` for the
        closed-form model with the 3-D-corrected environment profile
        (stronger edge effect; what the experiment suite uses).
    frequency:
        Operating frequency for the FDM lossy-silicon permittivity [Hz].
    resolution:
        FDM grid spacing [m] (None = solver default).
    parameters:
        Sharing parameters for the compact model.
    cache_dir:
        Directory for the on-disk cache; None disables disk caching,
        default follows :func:`default_cache_dir` (override with the
        ``REPRO_TSV_CACHE`` environment variable; set it empty to disable).
    probability_decimals:
        Probabilities are rounded to this many decimals for cache keying
        (capacitances vary slowly with probability).
    """

    def __init__(
        self,
        geometry: TSVArrayGeometry,
        method: str = "fdm",
        frequency: float = constants.F_CLOCK,
        resolution: Optional[float] = None,
        parameters: SharingParameters = DEFAULT_PARAMETERS,
        cache_dir: Optional[Path] = None,
        probability_decimals: int = 3,
    ) -> None:
        if method not in ("fdm", "compact", "compact3d"):
            raise ValueError(f"unknown extraction method {method!r}")
        self.geometry = geometry
        self.method = method
        if method == "compact3d" and parameters is DEFAULT_PARAMETERS:
            parameters = STRONG_EDGE_PARAMETERS
        self.frequency = frequency
        self.resolution = resolution
        self.parameters = parameters
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        self.probability_decimals = probability_decimals
        self._memory_cache: Dict[Tuple, np.ndarray] = {}
        self._compact_model: Optional[CompactCapacitanceModel] = None

    # -- cache plumbing -------------------------------------------------------

    def _key(self, probabilities: np.ndarray) -> Tuple:
        probs = tuple(np.round(probabilities, self.probability_decimals))
        return (
            _CACHE_VERSION,
            self.geometry.cache_key(),
            self.method,
            round(self.frequency, 3),
            self.resolution,
            self.parameters.as_array().tobytes()
            if self.method.startswith("compact") else b"",
            probs,
        )

    def _disk_path(self, key: Tuple) -> Optional[Path]:
        if self.cache_dir is None or self.method != "fdm":
            # The compact model is fast enough not to bother the disk.
            return None
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
        return Path(self.cache_dir) / f"cap_{digest}.npz"

    # -- extraction -----------------------------------------------------------

    def extract(
        self, probabilities: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """SPICE-form capacitance matrix [F] for per-TSV 1-bit probabilities.

        ``probabilities`` defaults to 0.5 everywhere (balanced data). The
        returned array is a copy the caller may modify.
        """
        n = self.geometry.n_tsvs
        if probabilities is None:
            probabilities = np.full(n, 0.5)
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (n,):
            raise ValueError(f"need {n} probabilities, got {probabilities.shape}")

        key = self._key(probabilities)
        cached = self._memory_cache.get(key)
        if cached is not None:
            return cached.copy()

        path = self._disk_path(key)
        if path is not None and path.exists():
            matrix = self._load_cached(path)
            if matrix is not None:
                self._memory_cache[key] = matrix
                return matrix.copy()

        matrix = self._compute(probabilities)
        self._memory_cache[key] = matrix
        if path is not None:
            self._store_cached(path, matrix)
        return matrix.copy()

    @staticmethod
    def _matrix_digest(matrix: np.ndarray) -> str:
        return hashlib.sha256(
            np.ascontiguousarray(matrix, dtype=np.float64).tobytes()
        ).hexdigest()

    def _store_cached(self, path: Path, matrix: np.ndarray) -> None:
        """Atomically write a checksummed, version-stamped cache bundle."""
        buffer = io.BytesIO()
        np.savez(
            buffer,
            matrix=np.asarray(matrix, dtype=np.float64),
            version=np.int64(_CACHE_VERSION),
            sha256=np.bytes_(self._matrix_digest(matrix).encode("ascii")),
        )
        atomic_write_bytes(path, buffer.getvalue())
        # The chaos harness corrupts entries "right after they are
        # written"; the next read must detect, evict and recompute.
        fault_point("cache_corrupt", path=path)

    def _evict(self, path: Path, reason: str) -> None:
        logger.warning("evicting unusable cache entry %s: %s", path, reason)
        path.unlink(missing_ok=True)

    def _load_cached(self, path: Path) -> Optional[np.ndarray]:
        """Read a cache entry; corrupt, stale or wrong-shaped bundles are
        logged, evicted and recomputed rather than crashing the extraction."""
        n = self.geometry.n_tsvs
        try:
            with np.load(path) as bundle:
                if "matrix" not in bundle or "sha256" not in bundle:
                    self._evict(path, "missing bundle fields")
                    return None
                version = int(bundle["version"]) if "version" in bundle else 0
                matrix = np.asarray(bundle["matrix"], dtype=np.float64)
                digest = bytes(bundle["sha256"].item()).decode("ascii")
        except Exception as exc:  # truncated npz raises BadZipFile/zlib.error
            self._evict(path, f"unreadable ({exc})")
            return None
        if version != _CACHE_VERSION:
            self._evict(path, f"version {version} != {_CACHE_VERSION}")
            return None
        if matrix.shape != (n, n) or not np.isfinite(matrix).all():
            self._evict(path, f"bad matrix (shape {matrix.shape})")
            return None
        if digest != self._matrix_digest(matrix):
            self._evict(path, "content checksum mismatch")
            return None
        return matrix

    def _compute(self, probabilities: np.ndarray) -> np.ndarray:
        if self.method == "fdm":
            from repro.tsv.fdm import FDMFieldSolver

            fault_point("slow_solve", method=self.method)
            solver = FDMFieldSolver(
                self.geometry,
                probabilities=probabilities,
                frequency=self.frequency,
                resolution=self.resolution,
            )
            return solver.capacitance_matrix()
        if self._compact_model is None:
            self._compact_model = CompactCapacitanceModel(
                self.geometry, parameters=self.parameters
            )
        return self._compact_model.capacitance_matrix(probabilities)


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "CapacitanceExtractor": {
        "geometry": "TSVArrayGeometry",
        "method": "any",
        "frequency": "scalar hertz",
    },
    "CapacitanceExtractor.extract": {
        "probabilities": "(N,) probability",
        "return": "(N, N) farad spice",
    },
    "CapacitanceExtractor.geometry": "TSVArrayGeometry",
    "CapacitanceExtractor.frequency": "scalar hertz",
}
