"""Linear capacitance / bit-probability model (paper Eq. 6, 7 and 9).

The exact dependence of the TSV capacitances on the 1-bit probabilities is
"very complex" (it runs through the depletion physics and the field
distribution), so the paper linearizes it:

``C_ij(p) = C0_ij + dC_ij * (p_i + p_j)``                            (Eq. 6)

and, shifted so that a bit inversion becomes a sign flip,

``C_ij(eps) = C_R,ij + dC_ij * (eps_i + eps_j)``,  ``eps_i = p_i - 1/2``  (Eq. 7/8)

The paper reports a normalized RMS error below 2 % for this regression [6].
:class:`LinearCapacitanceModel` fits ``C_R`` and ``dC`` from two extractions
(all probabilities 0 and all 1 — exact for the pairwise-linear form) and
exposes the matrix for arbitrary probability vectors, which is what makes the
optimal-assignment search (Eq. 10) tractable: the effect of an assignment
with inversions on ``C`` reduces to the algebra of Eq. 9.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.contracts import (
    check_capacitance_matrix,
    check_enabled,
    check_probabilities,
)
from repro.tsv.extractor import CapacitanceExtractor


def epsilon_from_probabilities(probabilities: Sequence[float]) -> np.ndarray:
    """Shifted probabilities ``eps_i = E{b_i} - 1/2`` (Eq. 8)."""
    probs = np.asarray(probabilities, dtype=float)
    if ((probs < 0.0) | (probs > 1.0)).any():
        raise ValueError("probabilities must lie in [0, 1]")
    return probs - 0.5


class LinearCapacitanceModel:
    """Fitted linear model ``C(eps) = C_R + dC o (eps 1^T + 1 eps^T)``.

    Build with :meth:`fit`, or directly from known ``c_r`` / ``delta_c``
    matrices.
    """

    def __init__(self, c_r: np.ndarray, delta_c: np.ndarray) -> None:
        c_r = np.asarray(c_r, dtype=float)
        delta_c = np.asarray(delta_c, dtype=float)
        if c_r.shape != delta_c.shape or c_r.ndim != 2 or c_r.shape[0] != c_r.shape[1]:
            raise ValueError(
                f"c_r and delta_c must be equal square matrices, got "
                f"{c_r.shape} and {delta_c.shape}"
            )
        self.c_r = c_r
        self.delta_c = delta_c

    @property
    def n_lines(self) -> int:
        return self.c_r.shape[0]

    # -- construction ---------------------------------------------------------

    @classmethod
    def fit(
        cls,
        extractor: CapacitanceExtractor,
        n_probes: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> "LinearCapacitanceModel":
        """Fit the linear model from extractions.

        With ``n_probes = 0`` (default) two extractions suffice: with the
        pairwise-linear form of Eq. 6, ``C(all 0) = C0`` and ``C(all 1) =
        C0 + 2 dC``; hence ``dC = (C(1) - C(0)) / 2`` and ``C_R = C0 + dC``
        (the balanced-data matrix of Eq. 7).

        With ``n_probes > 0``, that many extractions at uniform-random
        probability vectors are added and each entry's ``(C_R, dC)`` is the
        least-squares regression against ``eps_i + eps_j`` — this is the
        paper's actual "linear regression" [6] and halves the residual of
        the two-point fit where the true probability dependence is most
        curved (small TSVs). Only worth it with a cheap (compact)
        extractor.
        """
        n = extractor.geometry.n_tsvs
        probability_sets = [np.zeros(n), np.ones(n)]
        if n_probes > 0:
            if rng is None:
                rng = np.random.default_rng(2018)
            probability_sets.extend(
                rng.uniform(0.0, 1.0, n) for _ in range(n_probes)
            )
        matrices = np.stack([extractor.extract(p) for p in probability_sets])
        eps = np.stack(
            [epsilon_from_probabilities(p) for p in probability_sets]
        )
        # Per entry (i, j): C^k = C_R + dC * (eps_i^k + eps_j^k).
        x = eps[:, :, None] + eps[:, None, :]  # (k, n, n)
        x_mean = x.mean(axis=0)
        y_mean = matrices.mean(axis=0)
        x_centered = x - x_mean
        y_centered = matrices - y_mean
        denom = np.sum(x_centered**2, axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            delta_c = np.sum(x_centered * y_centered, axis=0) / denom
        delta_c = np.nan_to_num(delta_c, nan=0.0)
        c_r = y_mean - delta_c * x_mean
        return cls(c_r=c_r, delta_c=delta_c)

    # -- evaluation -----------------------------------------------------------

    def matrix(self, probabilities: Optional[Sequence[float]] = None) -> np.ndarray:
        """SPICE-form capacitance matrix [F] for given 1-bit probabilities.

        Defaults to balanced data (all 0.5), i.e. ``C_R`` itself. The
        diagonal (ground) entries receive ``2 * eps_i`` — Eq. 9 applied at
        ``i = j``.
        """
        if probabilities is None:
            return self.c_r.copy()
        check_enabled(check_probabilities, probabilities)
        eps = epsilon_from_probabilities(probabilities)
        if eps.shape != (self.n_lines,):
            raise ValueError(f"need {self.n_lines} probabilities, got {eps.shape}")
        return self.c_r + self.delta_c * (eps[:, None] + eps[None, :])

    # -- persistence ------------------------------------------------------------

    def save(self, path) -> None:
        """Write the fitted model to an ``.npz`` techfile.

        The file carries ``c_r`` and ``delta_c`` plus a format version;
        load with :meth:`load`. This is the artefact a design flow would
        check in next to the floorplan: extraction runs once, every later
        optimization loads the techfile.
        """
        np.savez(
            path,
            c_r=self.c_r,
            delta_c=self.delta_c,
            format_version=np.int64(1),
        )

    @classmethod
    def load(cls, path) -> "LinearCapacitanceModel":
        """Read a techfile written by :meth:`save`."""
        try:
            data = np.load(path)
        except (OSError, ValueError) as exc:
            raise ValueError(f"not a readable techfile: {path}") from exc
        try:
            version = int(data["format_version"])
            c_r = data["c_r"]
            delta_c = data["delta_c"]
        except KeyError as exc:
            raise ValueError(f"techfile {path} misses field {exc}") from exc
        if version != 1:
            raise ValueError(f"unsupported techfile version {version}")
        check_enabled(
            check_capacitance_matrix, c_r, name=f"techfile {path} c_r"
        )
        return cls(c_r=c_r, delta_c=delta_c)

    def nrmse(
        self,
        extractor: CapacitanceExtractor,
        probabilities: Sequence[float],
    ) -> float:
        """Normalized RMS error of the model against a real extraction.

        Normalization is by the RMS of the reference matrix; the paper
        quotes < 2 % for this regression.
        """
        reference = extractor.extract(probabilities)
        predicted = self.matrix(probabilities)
        rms_ref = float(np.sqrt(np.mean(reference**2)))
        if rms_ref == 0.0:
            return 0.0
        return float(np.sqrt(np.mean((predicted - reference) ** 2)) / rms_ref)


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "epsilon_from_probabilities": {
        "probabilities": "(N,) probability",
        "return": "(N,) dimensionless",
    },
    "LinearCapacitanceModel": {
        "c_r": "(N, N) farad spice",
        "delta_c": "(N, N) farad",
    },
    "LinearCapacitanceModel.fit": {
        "extractor": "CapacitanceExtractor",
        "n_probes": "scalar dimensionless",
        "rng": "any",
        "return": "LinearCapacitanceModel",
    },
    "LinearCapacitanceModel.matrix": {
        "probabilities": "(N,) probability",
        "return": "(N, N) farad spice",
    },
    "LinearCapacitanceModel.load": {
        "path": "any",
        "return": "LinearCapacitanceModel",
    },
    "LinearCapacitanceModel.nrmse": {
        "extractor": "CapacitanceExtractor",
        "probabilities": "(N,) probability",
        "return": "scalar dimensionless",
    },
    "LinearCapacitanceModel.c_r": "(N, N) farad spice",
    "LinearCapacitanceModel.delta_c": "(N, N) farad",
    "LinearCapacitanceModel.n_lines": "scalar dimensionless",
}
