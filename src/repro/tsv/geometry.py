"""Geometry of regular M x N TSV arrays.

The paper (Sec. 2) places cylindrical copper TSVs of radius ``r`` on a regular
grid with centre-to-centre pitch ``d``, traversing a 50 um substrate. Each TSV
carries a SiO2 liner of thickness ``r / 5``. This module captures that
geometry plus the neighbour topology the power model and the systematic
assignments reason about: direct neighbours (distance ``d``), diagonal
neighbours (distance ``d * sqrt(2)``), and the corner / edge / middle
position classes whose differing total capacitance drives the Spiral mapping.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from repro import constants


class PositionClass(enum.Enum):
    """Where a TSV sits in the array; determines its capacitive environment."""

    CORNER = "corner"
    EDGE = "edge"
    MIDDLE = "middle"


@dataclass(frozen=True)
class TSVArrayGeometry:
    """A regular ``rows x cols`` array of cylindrical TSVs.

    Parameters
    ----------
    rows, cols:
        Array dimensions (``M x N`` in the paper). Both must be >= 1.
    pitch:
        Centre-to-centre distance ``d`` between direct neighbours [m].
    radius:
        TSV copper radius ``r`` [m].
    length:
        TSV length = substrate thickness [m]; the paper fixes 50 um.
    oxide_thickness:
        SiO2 liner thickness [m]; defaults to the paper's ``r / 5``.

    TSV indices are row-major: index ``i = row * cols + col``.
    """

    rows: int
    cols: int
    pitch: float
    radius: float
    length: float = constants.TSV_LENGTH
    oxide_thickness: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"array must be at least 1x1, got {self.rows}x{self.cols}"
            )
        if self.pitch <= 0.0 or self.radius <= 0.0 or self.length <= 0.0:
            raise ValueError("pitch, radius and length must be positive")
        if self.oxide_thickness < 0.0:
            object.__setattr__(
                self, "oxide_thickness", constants.oxide_thickness(self.radius)
            )
        outer = self.radius + self.oxide_thickness
        if self.pitch < 2.0 * outer:
            raise ValueError(
                "pitch too small: TSVs (incl. liner) would overlap "
                f"(pitch={self.pitch}, 2*(r+t_ox)={2.0 * outer})"
            )

    # -- basic sizes --------------------------------------------------------

    @property
    def n_tsvs(self) -> int:
        """Number of TSVs in the array."""
        return self.rows * self.cols

    @property
    def outer_radius(self) -> float:
        """Radius of the copper core plus the SiO2 liner [m]."""
        return self.radius + self.oxide_thickness

    # -- index mapping ------------------------------------------------------

    def index(self, row: int, col: int) -> int:
        """Row-major index of the TSV at ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} array")
        return row * self.cols + col

    def row_col(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`index`."""
        if not (0 <= index < self.n_tsvs):
            raise IndexError(f"index {index} outside array of {self.n_tsvs} TSVs")
        return divmod(index, self.cols)

    def positions(self) -> np.ndarray:
        """Centre coordinates, shape ``(n_tsvs, 2)``, origin at TSV 0 [m]."""
        rows, cols = np.divmod(np.arange(self.n_tsvs), self.cols)
        return np.column_stack((cols * self.pitch, rows * self.pitch))

    # -- topology -----------------------------------------------------------

    def position_class(self, index: int) -> PositionClass:
        """Corner / edge / middle classification of one TSV.

        In degenerate arrays (single row or column) the ends count as corners
        and the interior as edge; a 1x1 array is a corner.
        """
        row, col = self.row_col(index)
        on_row_border = row in (0, self.rows - 1)
        on_col_border = col in (0, self.cols - 1)
        if on_row_border and on_col_border:
            return PositionClass.CORNER
        if on_row_border or on_col_border:
            return PositionClass.EDGE
        return PositionClass.MIDDLE

    def position_classes(self) -> List[PositionClass]:
        """Classification of every TSV, in index order."""
        return [self.position_class(i) for i in range(self.n_tsvs)]

    def direct_neighbors(self, index: int) -> List[int]:
        """Indices of the (up to 4) neighbours at distance ``pitch``."""
        row, col = self.row_col(index)
        result = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                result.append(self.index(r, c))
        return result

    def diagonal_neighbors(self, index: int) -> List[int]:
        """Indices of the (up to 4) neighbours at distance ``pitch*sqrt(2)``."""
        row, col = self.row_col(index)
        result = []
        for dr, dc in ((-1, -1), (-1, 1), (1, -1), (1, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                result.append(self.index(r, c))
        return result

    def neighbors(self, index: int) -> List[int]:
        """Direct plus diagonal neighbours (the paper's "up to eight")."""
        return self.direct_neighbors(index) + self.diagonal_neighbors(index)

    def distance(self, i: int, j: int) -> float:
        """Centre-to-centre distance between TSVs ``i`` and ``j`` [m]."""
        ri, ci = self.row_col(i)
        rj, cj = self.row_col(j)
        return self.pitch * math.hypot(ri - rj, ci - cj)

    def iter_pairs(self) -> Iterator[Tuple[int, int]]:
        """All unordered TSV pairs ``(i, j)`` with ``i < j``."""
        for i in range(self.n_tsvs):
            for j in range(i + 1, self.n_tsvs):
                yield i, j

    # -- convenience constructors -------------------------------------------

    @classmethod
    def itrs_min_2018(cls, rows: int, cols: int) -> "TSVArrayGeometry":
        """Array at the ITRS-2018 minimum dimensions (r=1 um, d=4 um)."""
        return cls(
            rows=rows,
            cols=cols,
            pitch=constants.PITCH_MIN_2018,
            radius=constants.RADIUS_MIN_2018,
        )

    @classmethod
    def large_2018(cls, rows: int, cols: int) -> "TSVArrayGeometry":
        """Array at the paper's larger geometry (r=2 um, d=8 um)."""
        return cls(
            rows=rows,
            cols=cols,
            pitch=constants.PITCH_LARGE,
            radius=constants.RADIUS_LARGE,
        )

    def cache_key(self) -> Tuple:
        """Hashable key identifying this geometry for extraction caches."""
        return (
            self.rows,
            self.cols,
            round(self.pitch, 12),
            round(self.radius, 12),
            round(self.length, 12),
            round(self.oxide_thickness, 12),
        )
