"""Bit-level statistics of data streams.

``switching``
    Empirical estimation of the quantities the power model consumes: self
    switching probabilities ``E{db_i^2}``, coupling products
    ``E{db_i db_j}`` and 1-bit probabilities ``E{b_i}``.
``dbt``
    The dual-bit-type analytic model (Landman/Rabaey) for AR(1) Gaussian
    word streams, used to generate synthetic switching statistics without
    sampling.
"""

from repro.stats.switching import BitStatistics

__all__ = ["BitStatistics"]
