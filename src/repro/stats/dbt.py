"""Dual-bit-type (DBT) analytic switching model for Gaussian word streams.

Landman and Rabaey [18 in the paper] observed that the bits of a Gaussian
DSP word split into two types: LSBs below a breakpoint ``BP0`` behave like
uniform white bits (self switching 1/2, no correlation), while MSBs above a
breakpoint ``BP1`` all copy the sign and therefore switch together, with a
switching probability set by the word-level temporal correlation. Bits in
between blend the two behaviours.

This module implements that model as a *mixture*: bit ``k`` acts like the
sign bit with weight ``w_k`` (0 below BP0, 1 above BP1, linear in between)
and like a uniform bit otherwise. For a stationary AR(1) Gaussian process
with lag-1 correlation ``rho`` the sign-flip probability is the classical
orthant result ``arccos(rho) / pi``.

The model produces a :class:`~repro.stats.switching.BitStatistics` directly,
letting the assignment optimizer run without sampling a stream at all.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.stats.switching import BitStatistics


def sign_flip_probability(rho: float) -> float:
    """P(sign change between consecutive samples) of an AR(1) Gaussian.

    The Gaussian orthant probability: ``arccos(rho) / pi``. 1/2 for white
    noise, -> 0 for strongly positively correlated, -> 1 for strongly
    anti-correlated processes.
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [-1, 1], got {rho}")
    return math.acos(rho) / math.pi


def breakpoints(width: int, sigma: float, mean: float = 0.0) -> tuple[float, float]:
    """DBT breakpoints ``(BP0, BP1)`` in bit positions.

    ``BP0 = log2(sigma)`` bounds the uniform LSB region; ``BP1 =
    log2(|mean| + 3 sigma)`` bounds the sign-like MSB region. Both are
    clipped to the word width.
    """
    if sigma <= 0.0:
        raise ValueError("sigma must be positive")
    bp0 = math.log2(sigma)
    bp1 = math.log2(abs(mean) + 3.0 * sigma)
    bp0 = min(max(bp0, 0.0), float(width - 1))
    bp1 = min(max(bp1, bp0), float(width - 1))
    return bp0, bp1


def dbt_statistics(
    width: int,
    sigma: float,
    rho: float = 0.0,
    mean: float = 0.0,
) -> BitStatistics:
    """Analytic bit statistics of a quantized AR(1) Gaussian word stream.

    Parameters
    ----------
    width:
        Word width in bits (two's complement).
    sigma:
        Standard deviation in LSBs.
    rho:
        Lag-1 temporal correlation of the word process.
    mean:
        Mean in LSBs (0 for the paper's "mean-free" signals).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    bp0, bp1 = breakpoints(width, sigma, mean)
    p_flip = sign_flip_probability(rho)
    p_negative = float(norm.sf(mean / sigma))  # P(word < 0) = P(MSB = 1)

    positions = np.arange(width, dtype=float)
    if bp1 > bp0:
        weights = np.clip((positions - bp0) / (bp1 - bp0), 0.0, 1.0)
    else:
        weights = (positions >= bp1).astype(float)

    self_switching = weights * p_flip + (1.0 - weights) * 0.5
    coupling = np.outer(weights, weights) * p_flip
    probabilities = weights * p_negative + (1.0 - weights) * 0.5

    stats = BitStatistics.from_moments(
        self_switching=self_switching,
        coupling=coupling,
        probabilities=probabilities,
    )
    stats.check_consistency()
    return stats
