"""Empirical bit-level switching statistics (the T matrix inputs).

The paper's power model (Eq. 1-3) needs three statistics of the transmitted
bit stream:

* ``E{db_i^2}`` — the *self switching* probability of bit *i* (``db`` is the
  signed transition, -1/0/+1, so its square is simply "did bit i toggle");
* ``E{db_i db_j}`` — the *coupling* statistic of a bit pair: positive when
  the bits tend to toggle in the same direction, negative when they tend to
  toggle in opposite directions;
* ``E{b_i}`` — the 1-bit probability, which sets the depletion widths (MOS
  effect).

:class:`BitStatistics` estimates all three from a sampled bit stream and
assembles the paper's ``T_s``, ``T_c`` and ``T`` matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def validate_bit_stream(stream: np.ndarray) -> np.ndarray:
    """Check and canonicalize a bit stream array.

    A bit stream is a ``(samples, lines)`` array containing only 0 and 1.
    Returns it as ``uint8``.
    """
    arr = np.asarray(stream)
    if arr.ndim != 2:
        raise ValueError(f"bit stream must be 2-D (samples, lines), got {arr.ndim}-D")
    if arr.shape[0] < 2:
        raise ValueError("bit stream needs at least 2 samples to have transitions")
    values = np.unique(arr)
    if not np.isin(values, (0, 1)).all():
        raise ValueError(f"bit stream may contain only 0 and 1, found {values[:10]}")
    return arr.astype(np.uint8)


@dataclass(frozen=True)
class BitStatistics:
    """Second-order bit statistics of a data stream.

    Attributes
    ----------
    self_switching:
        ``E{db_i^2}``, shape ``(n,)``.
    coupling:
        ``E{db_i db_j}``, shape ``(n, n)``; the diagonal holds
        ``E{db_i^2}`` (the i = j case of the same expectation).
    probabilities:
        ``E{b_i}``, shape ``(n,)``.
    n_samples:
        Number of stream samples the statistics were estimated from.
    """

    self_switching: np.ndarray
    coupling: np.ndarray
    probabilities: np.ndarray
    n_samples: int

    def __post_init__(self) -> None:
        n = self.self_switching.shape[0]
        if self.coupling.shape != (n, n):
            raise ValueError("coupling matrix shape mismatch")
        if self.probabilities.shape != (n,):
            raise ValueError("probabilities shape mismatch")

    @property
    def n_lines(self) -> int:
        return self.self_switching.shape[0]

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_stream(cls, stream: np.ndarray) -> "BitStatistics":
        """Estimate the statistics from a ``(samples, lines)`` bit stream."""
        bits = validate_bit_stream(stream)
        deltas = np.diff(bits.astype(np.int8), axis=0).astype(np.float64)
        coupling = deltas.T @ deltas / deltas.shape[0]
        return cls(
            self_switching=np.diag(coupling).copy(),
            coupling=coupling,
            probabilities=bits.mean(axis=0),
            n_samples=bits.shape[0],
        )

    @classmethod
    def from_moments(
        cls,
        self_switching: np.ndarray,
        coupling: np.ndarray,
        probabilities: np.ndarray,
    ) -> "BitStatistics":
        """Build from analytically known moments (e.g. the DBT model).

        The diagonal of ``coupling`` is overwritten with ``self_switching``
        for consistency.
        """
        self_switching = np.asarray(self_switching, dtype=float)
        coupling = np.asarray(coupling, dtype=float).copy()
        probabilities = np.asarray(probabilities, dtype=float)
        np.fill_diagonal(coupling, self_switching)
        return cls(
            self_switching=self_switching,
            coupling=coupling,
            probabilities=probabilities,
            n_samples=0,
        )

    # -- paper matrices -------------------------------------------------------

    @property
    def t_s(self) -> np.ndarray:
        """``T_s``: self-switching probabilities on the diagonal (Eq. 3)."""
        return np.diag(self.self_switching)

    @property
    def t_c(self) -> np.ndarray:
        """``T_c``: coupling statistics, zero diagonal (Eq. 3)."""
        t_c = self.coupling.copy()
        np.fill_diagonal(t_c, 0.0)
        return t_c

    @property
    def t_matrix(self) -> np.ndarray:
        """``T = T_s 1 - T_c`` (Eq. 3), the switching-cost weights."""
        n = self.n_lines
        return self.t_s @ np.ones((n, n)) - self.t_c

    @property
    def epsilon(self) -> np.ndarray:
        """Shifted bit probabilities ``eps_i = E{b_i} - 1/2`` (Eq. 8)."""
        return self.probabilities - 0.5

    # -- sanity ---------------------------------------------------------------

    def check_consistency(self, atol: float = 1e-9) -> None:
        """Raise if the moments violate basic probabilistic constraints.

        ``|E{db_i db_j}|`` can never exceed the geometric mean of the two
        self switching probabilities (Cauchy-Schwarz), and all probabilities
        must be in range.
        """
        if ((self.probabilities < -atol)
                | (self.probabilities > 1.0 + atol)).any():
            raise ValueError("bit probabilities outside [0, 1]")
        if ((self.self_switching < -atol)
                | (self.self_switching > 1.0 + atol)).any():
            raise ValueError("self switching outside [0, 1]")
        bound = np.sqrt(
            np.outer(self.self_switching, self.self_switching)
        )
        if (np.abs(self.t_c) > bound + atol).any():
            raise ValueError("coupling statistic violates Cauchy-Schwarz bound")


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``N`` = lines/TSVs, ``T`` = stream samples.
REPRO_SIGNATURES = {
    "validate_bit_stream": {"stream": "(T, N) bit", "return": "(T, N) bit"},
    "BitStatistics": {
        "self_switching": "(N,) probability",
        "coupling": "(N, N) dimensionless",
        "probabilities": "(N,) probability",
        "n_samples": "scalar dimensionless",
    },
    "BitStatistics.from_stream": {
        "stream": "(T, N) bit",
        "return": "BitStatistics",
    },
    "BitStatistics.from_moments": {
        "self_switching": "(N,) probability",
        "coupling": "(N, N) dimensionless",
        "probabilities": "(N,) probability",
        "return": "BitStatistics",
    },
    "BitStatistics.check_consistency": {"atol": "scalar dimensionless"},
    "BitStatistics.self_switching": "(N,) probability",
    "BitStatistics.coupling": "(N, N) dimensionless",
    "BitStatistics.probabilities": "(N,) probability",
    "BitStatistics.n_samples": "scalar dimensionless",
    "BitStatistics.n_lines": "scalar dimensionless",
    "BitStatistics.t_s": "(N, N) dimensionless",
    "BitStatistics.t_c": "(N, N) dimensionless",
    "BitStatistics.t_matrix": "(N, N) dimensionless",
    "BitStatistics.epsilon": "(N,) dimensionless",
    # Validated streams are exact 0/1 integers; the statistics derived
    # from one stream must be reproducible run to run.
    "@exact": ["validate_bit_stream return"],
    "@deterministic": ["BitStatistics.from_stream"],
}
