"""Command-line front-end: ``repro-tsv`` (or ``python -m repro``).

Subcommands
-----------

``extract``
    Print the capacitance matrix of an M x N TSV array.
``depletion``
    Print depletion width and MOS capacitance vs 1-bit probability.
``optimize``
    Load a bit stream from a ``.npy`` file (shape ``(samples, lines)``) or
    synthesize a Gaussian one, and report the optimal / systematic
    assignments.
``figure``
    Re-run one of the evaluation artefacts (``fig2`` .. ``fig6``, the
    Sec. 3 ``routing`` overhead, the ``ablations``, the ``related``-work
    CAC comparison, or the ``noc`` case study) and print its table —
    ``--format csv|json`` for machine-readable output.
``lint``
    Run the repo-specific static linter (rules ``REP001`` .. ``REP005``,
    see ``docs/static_analysis.md``) over files or directories; exits
    non-zero when findings remain, so CI can gate on it. ``--deep`` adds
    the interprocedural shape/unit (``REP101``..), concurrency
    (``REP201``..) and exactness/determinism (``REP301``..) passes, and
    ``--format sarif|github`` emits CI-native output.
``grid``
    The distributed sweep grid (see ``docs/grid.md``): ``plan`` expands a
    design-space JSON into a job queue, ``work`` serves it with one or
    more worker processes, ``status`` shows the job lifecycle and any
    determinism violations, ``query`` reassembles figure rows (or
    pivots/percentiles) from the results database, ``resubmit`` requeues
    failed or finished jobs.
``serve``
    Run the batched online encode/decode server for coded TSV links
    (see ``docs/serving.md``) until interrupted. Links are created by
    clients over the control channel. ``--workers N`` shards links
    across N worker processes with exact codec-state failover (see
    ``docs/robustness.md``).
``stream``
    Client-side verb: connect to a running server, create a coded link
    (geometry + codec chain) if needed, stream words through it, and
    print throughput, latency percentiles and the server's live
    coded-vs-uncoded energy report. ``--verify`` round-trips the coded
    words back through the server and checks bit-exactness.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np


def _add_geometry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=4, help="array rows")
    parser.add_argument("--cols", type=int, default=4, help="array columns")
    parser.add_argument("--pitch", type=float, default=8.0,
                        help="TSV pitch [um]")
    parser.add_argument("--radius", type=float, default=2.0,
                        help="TSV radius [um]")
    parser.add_argument(
        "--cap-method", default="compact3d",
        choices=("fdm", "compact", "compact3d"),
        help="capacitance extraction method",
    )


def _geometry(args: argparse.Namespace):
    from repro.tsv.geometry import TSVArrayGeometry

    return TSVArrayGeometry(
        rows=args.rows, cols=args.cols,
        pitch=args.pitch * 1e-6, radius=args.radius * 1e-6,
    )


def cmd_extract(args: argparse.Namespace) -> int:
    from repro.tsv.extractor import CapacitanceExtractor
    from repro.tsv.matrices import total_capacitance

    geometry = _geometry(args)
    extractor = CapacitanceExtractor(geometry, method=args.cap_method)
    probabilities = np.full(geometry.n_tsvs, args.probability)
    matrix = extractor.extract(probabilities)
    np.set_printoptions(precision=2, suppress=True, linewidth=200)
    print(f"# {geometry.rows}x{geometry.cols} array, r={args.radius} um, "
          f"d={args.pitch} um, p={args.probability}, method={args.cap_method}")
    print("# SPICE-form capacitance matrix [fF]:")
    print(matrix * 1e15)
    print("# total capacitance per TSV [fF]:")
    print(np.round(total_capacitance(matrix) * 1e15, 2))
    return 0


def cmd_depletion(args: argparse.Namespace) -> int:
    from repro.tsv.depletion import DepletionModel

    model = DepletionModel(
        radius=args.radius * 1e-6,
        oxide_thickness=args.radius * 1e-6 / 5.0,
    )
    print("# p(1)   width [um]   C_mos [pF/m]")
    for probability in np.linspace(0.0, 1.0, args.points):
        width = model.width_for_probability(probability)
        cap = model.mos_capacitance_per_length(probability)
        print(f"  {probability:4.2f}   {width * 1e6:10.4f}   {cap * 1e12:10.2f}")
    return 0


def _load_stream(path: str, n_lines: int) -> np.ndarray:
    """Load and validate a ``--stream`` file; exit 2 with a one-line error.

    Accepts a plain ``.npy`` array of shape ``(samples, n_lines)`` whose
    values are 0/1. Pickled arrays and ``.npz`` archives are rejected
    explicitly (a bit stream never needs Python object serialization).
    """

    def fail(message: str) -> "SystemExit":
        print(f"error: --stream {path}: {message}", file=sys.stderr)
        return SystemExit(2)

    if not os.path.exists(path):
        raise fail("file not found")
    # Sniff the magic bytes so each bad format gets an accurate message:
    # np.load reports anything without the .npy magic as a pickle error.
    try:
        with open(path, "rb") as handle:
            magic = handle.read(6)
    except OSError as exc:
        raise fail(f"not a readable .npy file ({exc})") from exc
    if magic.startswith(b"PK"):
        raise fail(".npz archives are not accepted; pass a single .npy array")
    if not magic.startswith(b"\x93NUMPY"):
        raise fail("not a readable .npy file (missing .npy magic header)")
    try:
        bits = np.load(path, allow_pickle=False)
    except ValueError as exc:
        if "pickle" in str(exc).lower():
            raise fail(
                "pickled arrays are not accepted; save with "
                "np.save(path, bits.astype(np.uint8))"
            ) from exc
        raise fail(f"not a readable .npy file ({exc})") from exc
    except OSError as exc:
        raise fail(f"not a readable .npy file ({exc})") from exc
    if bits.ndim != 2:
        raise fail(f"need shape (samples, lines), got shape {bits.shape}")
    if bits.shape[1] != n_lines:
        raise fail(
            f"stream has {bits.shape[1]} lines but the "
            f"--rows x --cols array has {n_lines} TSVs"
        )
    if bits.size == 0:
        raise fail("stream is empty")
    if not np.issubdtype(bits.dtype, np.number) and bits.dtype != np.bool_:
        raise fail(f"need a numeric/boolean dtype, got {bits.dtype}")
    if not np.isin(bits, (0, 1)).all():
        raise fail("stream values must all be 0 or 1")
    return bits.astype(np.uint8)


def cmd_optimize(args: argparse.Namespace) -> int:
    from repro.core.pipeline import optimize_assignment

    geometry = _geometry(args)
    if args.stream is not None:
        bits = _load_stream(args.stream, geometry.n_tsvs)
    else:
        from repro.datagen.gaussian import gaussian_bit_stream

        bits = gaussian_bit_stream(
            args.samples, geometry.n_tsvs,
            sigma=2.0 ** (geometry.n_tsvs / 2.0), rho=args.rho,
            rng=np.random.default_rng(args.seed),
        )
        print(f"# no stream given - using a synthetic Gaussian stream "
              f"(rho={args.rho})")
    best_report = None
    for method in args.methods.split(","):
        report = optimize_assignment(
            bits, geometry, method=method.strip(),
            cap_method=args.cap_method,
            rng=np.random.default_rng(args.seed),
            n_restarts=args.restarts, n_jobs=args.jobs,
            deadline_s=args.deadline,
            checkpoint_dir=args.checkpoint_dir,
            resume_from=args.resume,
        )
        if best_report is None or report.power < best_report.power:
            best_report = report
        note = "" if report.completed else "   (stopped early, best-so-far)"
        print(f"{method.strip():10s}: P_n = {report.power * 1e15:8.3f} fF   "
              f"reduction vs random = {report.reduction_vs_random * 100:6.2f} %"
              f"{note}")
        if args.show_assignment:
            print(f"  line_of_bit = {report.assignment.line_of_bit}")
            print(f"  inverted    = {report.assignment.inverted}")
    if args.save_assignment and best_report is not None:
        from repro.reporting import assignment_to_json

        with open(args.save_assignment, "w") as handle:
            handle.write(assignment_to_json(best_report.assignment))
        print(f"# best assignment written to {args.save_assignment}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ablations,
        fig2,
        fig3,
        fig4,
        fig5,
        fig6,
        noc_case_study,
        related_work,
        routing_overhead,
    )

    modules = {
        "fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5, "fig6": fig6,
        "routing": routing_overhead, "ablations": ablations,
        "related": related_work, "noc": noc_case_study,
    }
    resumable = {"fig2", "fig3", "fig4", "fig5", "fig6", "noc"}
    checkpoint_dir = args.resume or args.checkpoint_dir

    def sweep_kwargs(name: str) -> dict:
        if checkpoint_dir is None or name not in resumable:
            return {}
        return {"checkpoint_dir": checkpoint_dir}

    if args.name == "all":
        names = list(modules)
    else:
        names = [args.name]
    if args.format == "table":
        for name in names:
            modules[name].main(fast=args.fast, **sweep_kwargs(name))
            print()
        return 0

    from repro.reporting import rows_to_csv, rows_to_json

    chunks = []
    for name in names:
        module = modules[name]
        if not hasattr(module, "run"):
            raise SystemExit(
                f"{name} has no machine-readable row output; use --format table"
            )
        rows = module.run(fast=args.fast, **sweep_kwargs(name))
        if args.format == "csv":
            chunks.append(f"# {name}\n" + rows_to_csv(rows))
        else:
            chunks.append(rows_to_json(rows))
    text = "\n".join(chunks)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"# written to {args.output}")
    else:
        print(text)
    return 0


def _parse_json_arg(text: Optional[str], flag: str) -> dict:
    import json

    if not text:
        return {}
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"error: {flag} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SystemExit(f"error: {flag} must be a JSON object")
    return document


def cmd_grid_plan(args: argparse.Namespace) -> int:
    from repro.grid import JobQueue, expand, load_space

    try:
        space = load_space(args.space)
        jobs = expand(space)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    queue = JobQueue(args.root, max_attempts=args.max_attempts)
    submitted = sum(1 for job in jobs if queue.submit(job))
    counts = queue.counts()
    print(f"# space {space.name or args.space}: {len(jobs)} jobs, "
          f"{submitted} newly submitted, {len(jobs) - submitted} known")
    print("  " + "  ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    return 0


def cmd_grid_work(args: argparse.Namespace) -> int:
    if args.workers is not None:
        import subprocess

        if args.workers < 1:
            raise SystemExit("error: --workers must be >= 1")
        commands = [
            [sys.executable, "-m", "repro.grid.worker", args.root,
             "--index", str(index),
             "--max-attempts", str(args.max_attempts),
             "--lease-timeout", str(args.lease_timeout)]
            + (["--max-jobs", str(args.max_jobs)] if args.max_jobs else [])
            + (["--wait"] if args.wait else [])
            for index in range(args.workers)
        ]
        processes = [
            subprocess.Popen(command, env=os.environ.copy())
            for command in commands
        ]
        status = 0
        for process in processes:
            status = max(status, abs(process.wait()))
        return status

    from repro.grid import GridWorker

    worker = GridWorker(
        args.root,
        index=args.index,
        max_attempts=args.max_attempts,
        lease_timeout_s=args.lease_timeout,
        wait=args.wait,
        max_jobs=args.max_jobs,
    )
    stats = worker.run()
    print("  ".join(f"{k}={v}" for k, v in sorted(stats.items())))
    return 0


def cmd_grid_status(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.grid import JobQueue, JobState, ResultStore

    queue = JobQueue(args.root)
    counts = queue.counts()
    print("# jobs: " + "  ".join(
        f"{k}={v}" for k, v in sorted(counts.items())
    ))
    store_path = Path(args.root) / "results.sqlite"
    if store_path.exists():
        store = ResultStore(store_path)
        violations = store.violations()
        print(f"# results: {store.count()} recorded, "
              f"{len(violations)} determinism violations")
        for violation in violations:
            print(f"  VIOLATION {violation['fingerprint'][:12]} "
                  f"stored={violation['stored_sha256'][:12]} "
                  f"rerun={violation['new_sha256'][:12]} "
                  f"worker={violation['worker']}")
    for job in queue.jobs(JobState.FAILED):
        print(f"  failed {job.fingerprint[:12]} {job.experiment}/{job.point} "
              f"attempts={job.attempts}: {job.error}")
    if args.verbose:
        for state in (JobState.PENDING, JobState.RUNNING):
            for job in queue.jobs(state):
                print(f"  {state} {job.fingerprint[:12]} "
                      f"{job.experiment}/{job.point}")
    return 1 if counts[JobState.FAILED] else 0


def cmd_grid_query(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.grid import (
        QueryError, ResultStore, figure_rows, percentiles, pivot, select,
    )
    from repro.reporting import rows_to_csv, rows_to_json

    store_path = Path(args.root) / "results.sqlite"
    if not store_path.exists():
        raise SystemExit(f"error: no results database at {store_path}")
    store = ResultStore(store_path)
    where = _parse_json_arg(args.where, "--where")

    try:
        if args.percentiles:
            records = select(store, args.experiment, where=where or None)
            table = percentiles(records, args.percentiles, over=args.over)
            text = json.dumps(table, indent=2)
        elif args.pivot:
            try:
                index, columns, value = args.pivot.split(",")
            except ValueError as exc:
                raise SystemExit(
                    "error: --pivot needs 'index,columns,value'"
                ) from exc
            records = select(store, args.experiment, where=where or None)
            text = json.dumps(pivot(records, index, columns, value), indent=2)
        else:
            if not args.experiment:
                raise SystemExit("error: grid query needs --experiment")
            params = _parse_json_arg(args.params, "--params")
            rows = figure_rows(
                store, args.experiment, params,
                missing="skip" if args.partial else "error",
            )
            if args.format == "csv":
                text = rows_to_csv(rows)
            elif args.format == "json":
                text = rows_to_json(rows)
            else:
                from repro.experiments.common import format_table

                text = format_table(
                    f"grid {args.experiment} {params}", rows, unit="raw"
                )
    except QueryError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"# written to {args.output}")
    else:
        print(text)
    return 0


def cmd_grid_resubmit(args: argparse.Namespace) -> int:
    from repro.grid import JobQueue, JobState

    queue = JobQueue(args.root)
    targets = list(args.fingerprints)
    states = [JobState.FAILED] + ([JobState.DONE] if args.done else [])
    if not targets:
        targets = [
            job.fingerprint
            for state in states
            for job in queue.jobs(state)
        ]
    requeued = sum(
        1 for fingerprint in targets
        if queue.resubmit(fingerprint, from_states=states)
    )
    print(f"# resubmitted {requeued}/{len(targets)} jobs")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import run_lint

    return run_lint(
        args.paths,
        output_format=args.format,
        deep=args.deep,
        threads=args.threads,
        exact=args.exact,
        exclude=args.exclude,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import BatchPolicy, LinkServer

    policy = BatchPolicy(
        window_s=args.window_ms * 1e-3,
        max_batch_words=args.max_batch_words,
        max_batch_requests=args.max_batch_requests,
        queue_limit=args.queue_limit,
    )

    async def run() -> None:
        if args.workers is not None:
            from repro.serve.fleet import FleetServer

            server = FleetServer(
                n_workers=args.workers,
                policy=policy,
                runtime_dir=args.runtime_dir,
                snapshot_every=args.snapshot_every,
            )
        else:
            server = LinkServer(policy=policy, max_workers=args.batch_threads)
        await server.start(host=args.host, port=args.port, path=args.unix)
        address = server.address
        if isinstance(address, tuple):
            print(f"serving on {address[0]}:{address[1]}", flush=True)
        else:
            print(f"serving on {address}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    asyncio.run(run())
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    import time

    from repro.serve import LinkClient

    with LinkClient.connect(args.connect) as client:
        if args.link not in client.ping():
            config = {
                "width": args.width,
                "geometry": {
                    "rows": args.rows, "cols": args.cols,
                    "pitch": args.pitch * 1e-6,
                    "radius": args.radius * 1e-6,
                },
                "codecs": list(args.codec),
                "cap_method": args.cap_method,
            }
            info = client.create_link(args.link, config)
            print(f"# created link {args.link!r}: {info['width_in']} payload "
                  f"bits -> {info['width_out']} coded bits on "
                  f"{info['n_lines']} TSVs")
        words = np.random.default_rng(args.seed).integers(
            0, 1 << args.width, args.samples
        )
        start = time.perf_counter()
        coded = client.stream(
            args.link, words,
            chunk_words=args.chunk_words, max_in_flight=args.in_flight,
        )
        elapsed = time.perf_counter() - start
        print(f"encoded {len(words)} words in {elapsed:.3f} s "
              f"({len(words) / elapsed:,.0f} words/s)")
        if args.verify:
            back = client.stream(
                args.link, coded, op="decode",
                chunk_words=args.chunk_words, max_in_flight=args.in_flight,
            )
            if (back == words).all():
                print("round-trip: OK (bit-exact)")
            else:
                print("round-trip: MISMATCH", file=sys.stderr)
                return 1
        stats = client.stats(args.link)
        latency = stats["metrics"]["latency"]
        energy = stats["energy"]
        print(f"server: {stats['metrics']['batches']} batches, "
              f"p50={latency['p50_s'] * 1e6:.0f} us  "
              f"p95={latency['p95_s'] * 1e6:.0f} us  "
              f"p99={latency['p99_s'] * 1e6:.0f} us")
        coded_mw = energy["coded"]["power_mw"]
        uncoded_mw = energy["uncoded"]["power_mw"]
        if energy["savings"] is not None:
            print(f"energy: coded {coded_mw:.4f} mW vs uncoded "
                  f"{uncoded_mw:.4f} mW -> savings "
                  f"{energy['savings'] * 100:.2f} %")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tsv",
        description="Low-power bit-to-TSV assignment toolkit "
                    "(reproduction of Bamberg et al., DAC 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_extract = sub.add_parser("extract", help="extract a capacitance matrix")
    _add_geometry_arguments(p_extract)
    p_extract.add_argument("--probability", type=float, default=0.5,
                           help="1-bit probability on every TSV")
    p_extract.set_defaults(func=cmd_extract)

    p_depletion = sub.add_parser(
        "depletion", help="depletion width / MOS capacitance vs probability"
    )
    p_depletion.add_argument("--radius", type=float, default=1.0,
                             help="TSV radius [um]")
    p_depletion.add_argument("--points", type=int, default=11)
    p_depletion.set_defaults(func=cmd_depletion)

    p_optimize = sub.add_parser("optimize", help="optimize an assignment")
    _add_geometry_arguments(p_optimize)
    p_optimize.add_argument("--stream", default=None,
                            help=".npy bit stream, shape (samples, lines)")
    p_optimize.add_argument("--samples", type=int, default=10000,
                            help="synthetic stream length")
    p_optimize.add_argument("--rho", type=float, default=0.5,
                            help="synthetic stream temporal correlation")
    p_optimize.add_argument("--seed", type=int, default=2018)
    p_optimize.add_argument("--methods",
                            default="optimal,spiral,sawtooth,identity")
    p_optimize.add_argument("--restarts", type=int, default=1,
                            help="independent annealing chains (best wins)")
    p_optimize.add_argument("--jobs", type=int, default=1,
                            help="worker threads for --restarts > 1")
    p_optimize.add_argument("--deadline", type=float, default=None,
                            help="wall-clock budget [s]; returns best-so-far")
    p_optimize.add_argument("--checkpoint-dir", default=None,
                            help="write resumable search checkpoints here")
    p_optimize.add_argument("--resume", default=None, metavar="DIR",
                            help="resume the search from this checkpoint dir")
    p_optimize.add_argument("--show-assignment", action="store_true")
    p_optimize.add_argument("--save-assignment", default=None,
                            help="write the best assignment as JSON")
    p_optimize.set_defaults(func=cmd_optimize)

    p_figure = sub.add_parser(
        "figure", help="re-run one of the paper's evaluation artefacts"
    )
    p_figure.add_argument(
        "name",
        choices=("fig2", "fig3", "fig4", "fig5", "fig6", "routing",
                 "ablations", "related", "noc", "all"),
    )
    p_figure.add_argument("--fast", action="store_true",
                          help="shrunken sweeps (seconds instead of minutes)")
    p_figure.add_argument("--format", default="table",
                          choices=("table", "csv", "json"))
    p_figure.add_argument("--output", default=None,
                          help="write machine-readable output to a file")
    p_figure.add_argument("--checkpoint-dir", default=None,
                          help="write resumable sweep checkpoints here")
    p_figure.add_argument("--resume", default=None, metavar="DIR",
                          help="resume interrupted sweeps from this dir")
    p_figure.set_defaults(func=cmd_figure)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo-specific static linter (REP001..REP007; "
             "--threads adds REP201..REP206, --exact adds REP301..REP306, "
             "--deep adds every deep pass)",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json", "sarif", "github"))
    p_lint.add_argument(
        "--deep", action="store_true",
        help="also run the shape/unit, concurrency and exactness passes",
    )
    p_lint.add_argument(
        "--threads", action="store_true",
        help="also run the concurrency-safety pass (REP201..REP206)",
    )
    p_lint.add_argument(
        "--exact", action="store_true",
        help="also run the exactness/determinism pass (REP301..REP306)",
    )
    p_lint.add_argument(
        "--exclude", action="append", default=[], metavar="PATH",
        help="drop findings under this path (repeatable)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_grid = sub.add_parser(
        "grid",
        help="distributed sweep grid: plan, work, status, query, resubmit "
             "(see docs/grid.md)",
    )
    grid_sub = p_grid.add_subparsers(dest="grid_command", required=True)

    g_plan = grid_sub.add_parser(
        "plan", help="expand a design-space JSON and submit its jobs"
    )
    g_plan.add_argument("space", help="design-space spec file (JSON)")
    g_plan.add_argument("--root", required=True,
                        help="grid directory (jobs + results.sqlite)")
    g_plan.add_argument("--max-attempts", type=int, default=3)
    g_plan.set_defaults(func=cmd_grid_plan)

    g_work = grid_sub.add_parser(
        "work", help="serve a grid until its queue drains"
    )
    g_work.add_argument("root", help="grid directory")
    g_work.add_argument("--index", type=int, default=0,
                        help="worker slot number (in-process mode)")
    g_work.add_argument("--workers", type=int, default=None, metavar="N",
                        help="spawn N worker subprocesses instead")
    g_work.add_argument("--max-attempts", type=int, default=3)
    g_work.add_argument("--lease-timeout", type=float, default=30.0,
                        help="seconds of lease silence before reclaim")
    g_work.add_argument("--max-jobs", type=int, default=None)
    g_work.add_argument("--wait", action="store_true",
                        help="keep polling after the queue drains")
    g_work.set_defaults(func=cmd_grid_work)

    g_status = grid_sub.add_parser(
        "status", help="job lifecycle counts, failures, violations"
    )
    g_status.add_argument("root", help="grid directory")
    g_status.add_argument("--verbose", action="store_true",
                          help="also list pending/running jobs")
    g_status.set_defaults(func=cmd_grid_status)

    g_query = grid_sub.add_parser(
        "query", help="reassemble figure rows / aggregates from the store"
    )
    g_query.add_argument("root", help="grid directory")
    g_query.add_argument("--experiment", default=None,
                         help="experiment name (fig4, fig6, noc, selftest)")
    g_query.add_argument("--params", default=None, metavar="JSON",
                         help="exact parameter set of the figure rows")
    g_query.add_argument("--where", default=None, metavar="JSON",
                         help="axis filter for --pivot/--percentiles")
    g_query.add_argument("--pivot", default=None,
                         metavar="INDEX,COLUMNS,VALUE",
                         help="pivot one metric over two axes")
    g_query.add_argument("--percentiles", default=None, metavar="METRIC",
                         help="robustness percentiles of a metric")
    g_query.add_argument("--over", default="seed",
                         help="variation axis for --percentiles")
    g_query.add_argument("--partial", action="store_true",
                         help="tolerate missing points (skip instead of "
                              "error)")
    g_query.add_argument("--format", default="table",
                         choices=("table", "csv", "json"))
    g_query.add_argument("--output", default=None,
                         help="write the output to a file")
    g_query.set_defaults(func=cmd_grid_query)

    g_resubmit = grid_sub.add_parser(
        "resubmit", help="requeue failed (or finished) jobs"
    )
    g_resubmit.add_argument("root", help="grid directory")
    g_resubmit.add_argument("fingerprints", nargs="*",
                            help="specific jobs (default: every failed job)")
    g_resubmit.add_argument("--done", action="store_true",
                            help="also requeue finished jobs (force re-run)")
    g_resubmit.set_defaults(func=cmd_grid_resubmit)

    p_serve = sub.add_parser(
        "serve",
        help="run the batched online encode/decode server for coded links",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral, printed at start)")
    p_serve.add_argument("--unix", default=None, metavar="PATH",
                         help="listen on a unix socket instead of TCP")
    p_serve.add_argument("--window-ms", type=float, default=2.0,
                         help="micro-batch coalescing window [ms]")
    p_serve.add_argument("--max-batch-words", type=int, default=65536)
    p_serve.add_argument("--max-batch-requests", type=int, default=128)
    p_serve.add_argument("--queue-limit", type=int, default=256,
                         help="per-link queue bound (full queue sheds)")
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="fleet mode: shard links across N worker "
                              "processes with exact codec-state failover")
    p_serve.add_argument("--batch-threads", type=int, default=None,
                         help="batch executor threads (single-engine mode)")
    p_serve.add_argument("--runtime-dir", default=None, metavar="DIR",
                         help="fleet worker sockets + snapshot checkpoints "
                              "(default: private temp dir)")
    p_serve.add_argument("--snapshot-every", type=int, default=512,
                         help="fleet: journaled requests per link between "
                              "epoch snapshots")
    p_serve.set_defaults(func=cmd_serve)

    p_stream = sub.add_parser(
        "stream",
        help="stream words through a running serve instance and report",
    )
    p_stream.add_argument("--connect", required=True,
                          help="server address: host:port or unix path")
    p_stream.add_argument("--link", default="cli",
                          help="link id (created if it does not exist)")
    _add_geometry_arguments(p_stream)
    p_stream.add_argument("--width", type=int, default=8,
                          help="payload word width [bits]")
    p_stream.add_argument(
        "--codec", action="append", default=[],
        help="codec spec, repeatable, applied in order "
             "(e.g. --codec correlator:n_channels=4 --codec gray:negated)",
    )
    p_stream.add_argument("--samples", type=int, default=100000,
                          help="number of words to stream")
    p_stream.add_argument("--seed", type=int, default=2018)
    p_stream.add_argument("--chunk-words", type=int, default=4096)
    p_stream.add_argument("--in-flight", type=int, default=32,
                          help="max pipelined chunks")
    p_stream.add_argument("--verify", action="store_true",
                          help="decode the coded words back and compare")
    p_stream.set_defaults(func=cmd_stream)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Long computations convert SIGINT into best-so-far returns and
        # resumable checkpoints themselves; anything that still escapes
        # exits with the conventional interrupt status.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # `repro-tsv ... | head` closes stdout early; exit quietly with
        # the conventional SIGPIPE status instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
